package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusionMatrixBasics(t *testing.T) {
	cm := NewConfusionMatrix(3)
	cm.Add(0, 0)
	cm.Add(0, 1)
	cm.Add(1, 1)
	cm.Add(2, 2)
	cm.Add(2, 2)
	if cm.Total() != 5 {
		t.Fatalf("total = %v", cm.Total())
	}
	if cm.Accuracy() != 0.8 {
		t.Fatalf("accuracy = %v", cm.Accuracy())
	}
	if cm.Recall(0) != 0.5 || cm.Recall(1) != 1 || cm.Recall(2) != 1 {
		t.Fatalf("recalls = %v %v %v", cm.Recall(0), cm.Recall(1), cm.Recall(2))
	}
	if cm.ClassTotal(0) != 2 || cm.PredictedTotal(1) != 2 {
		t.Fatal("marginals wrong")
	}
	// Out-of-range adds are ignored.
	cm.Add(-1, 0)
	cm.Add(0, 7)
	if cm.Total() != 5 {
		t.Fatal("out-of-range outcomes should be ignored")
	}
	cm.Reset()
	if cm.Total() != 0 || cm.Accuracy() != 0 {
		t.Fatal("reset failed")
	}
}

func TestKappaPerfectAndChance(t *testing.T) {
	cm := NewConfusionMatrix(2)
	for i := 0; i < 50; i++ {
		cm.Add(0, 0)
		cm.Add(1, 1)
	}
	if math.Abs(cm.Kappa()-1) > 1e-9 {
		t.Fatalf("perfect agreement kappa = %v", cm.Kappa())
	}
	// Random predictions: kappa ~ 0.
	cm2 := NewConfusionMatrix(2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		cm2.Add(rng.Intn(2), rng.Intn(2))
	}
	if math.Abs(cm2.Kappa()) > 0.05 {
		t.Fatalf("chance-level kappa = %v", cm2.Kappa())
	}
}

func TestPairAUCPerfectSeparation(t *testing.T) {
	buf := []windowEntry{
		{trueClass: 0, predicted: 0, scores: []float64{0.9, 0.1}},
		{trueClass: 0, predicted: 0, scores: []float64{0.8, 0.2}},
		{trueClass: 1, predicted: 1, scores: []float64{0.2, 0.8}},
		{trueClass: 1, predicted: 1, scores: []float64{0.1, 0.9}},
	}
	auc := windowAUC(buf, 2)
	if math.Abs(auc-1) > 1e-9 {
		t.Fatalf("perfect separation AUC = %v", auc)
	}
}

func TestPairAUCInvertedScores(t *testing.T) {
	buf := []windowEntry{
		{trueClass: 0, scores: []float64{0.1, 0.9}},
		{trueClass: 0, scores: []float64{0.2, 0.8}},
		{trueClass: 1, scores: []float64{0.9, 0.1}},
		{trueClass: 1, scores: []float64{0.8, 0.2}},
	}
	auc := windowAUC(buf, 2)
	if math.Abs(auc) > 1e-9 {
		t.Fatalf("inverted scores AUC = %v, want 0", auc)
	}
}

func TestWindowAUCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	buf := make([]windowEntry, 2000)
	for i := range buf {
		s := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		buf[i] = windowEntry{trueClass: rng.Intn(3), scores: s}
	}
	auc := windowAUC(buf, 3)
	if math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("random scores AUC = %v, want ~0.5", auc)
	}
}

func TestWindowAUCSkipsAbsentClasses(t *testing.T) {
	buf := []windowEntry{
		{trueClass: 0, scores: []float64{0.9, 0.1, 0}},
		{trueClass: 1, scores: []float64{0.1, 0.9, 0}},
	}
	// Class 2 absent; the measure covers only the (0,1) pair.
	auc := windowAUC(buf, 3)
	if math.Abs(auc-1) > 1e-9 {
		t.Fatalf("AUC with absent class = %v", auc)
	}
}

func TestWindowAUCNilScoresUsesPrediction(t *testing.T) {
	buf := []windowEntry{
		{trueClass: 0, predicted: 0},
		{trueClass: 1, predicted: 1},
		{trueClass: 1, predicted: 0},
	}
	auc := windowAUC(buf, 2)
	if auc <= 0.5 || auc > 1 {
		t.Fatalf("degenerate one-hot AUC = %v", auc)
	}
}

func TestWindowGMeanPerfect(t *testing.T) {
	buf := []windowEntry{
		{trueClass: 0, predicted: 0},
		{trueClass: 1, predicted: 1},
		{trueClass: 2, predicted: 2},
	}
	if gm := windowGMean(buf, 3); math.Abs(gm-1) > 1e-9 {
		t.Fatalf("perfect G-mean = %v", gm)
	}
}

func TestWindowGMeanBrokenClassDragsItDown(t *testing.T) {
	var buf []windowEntry
	for i := 0; i < 100; i++ {
		buf = append(buf, windowEntry{trueClass: 0, predicted: 0})
		buf = append(buf, windowEntry{trueClass: 1, predicted: 1})
	}
	for i := 0; i < 10; i++ {
		buf = append(buf, windowEntry{trueClass: 2, predicted: 0}) // class 2 fully missed
	}
	gm := windowGMean(buf, 3)
	if gm > 0.5 {
		t.Fatalf("G-mean %v should collapse with a fully-missed class", gm)
	}
	if gm <= 0 {
		t.Fatalf("G-mean floored at %v; the floor should keep it positive", gm)
	}
}

func TestPrequentialWindowing(t *testing.T) {
	p := NewPrequential(2, 100)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		y := rng.Intn(2)
		scores := []float64{0.2, 0.8}
		if y == 0 {
			scores = []float64{0.8, 0.2}
		}
		p.Add(y, y, scores)
	}
	p.Finish()
	if got := p.PMAUC(); math.Abs(got-100) > 1e-6 {
		t.Fatalf("perfect stream pmAUC = %v", got)
	}
	if got := p.PMGM(); math.Abs(got-100) > 1e-6 {
		t.Fatalf("perfect stream pmGM = %v", got)
	}
	if got := p.Accuracy(); math.Abs(got-100) > 1e-6 {
		t.Fatalf("perfect stream accuracy = %v", got)
	}
	if len(p.SeriesAUC()) != 10 {
		t.Fatalf("expected 10 windows, got %d", len(p.SeriesAUC()))
	}
}

func TestPrequentialDegradationVisibleInSeries(t *testing.T) {
	p := NewPrequential(2, 200)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 4000; i++ {
		y := rng.Intn(2)
		pred := y
		scores := []float64{0.1, 0.9}
		if y == 0 {
			scores = []float64{0.9, 0.1}
		}
		if i >= 2000 {
			// Second half: random predictions and uninformative scores.
			pred = rng.Intn(2)
			scores = []float64{0.5 + rng.Float64()*0.001, 0.5}
		}
		p.Add(y, pred, scores)
	}
	p.Finish()
	series := p.SeriesAUC()
	if len(series) != 20 {
		t.Fatalf("expected 20 windows, got %d", len(series))
	}
	firstHalf, secondHalf := 0.0, 0.0
	for i, v := range series {
		if i < 10 {
			firstHalf += v
		} else {
			secondHalf += v
		}
	}
	if firstHalf/10 < 0.95 || secondHalf/10 > 0.7 {
		t.Fatalf("degradation not visible: first=%v second=%v", firstHalf/10, secondHalf/10)
	}
}

func TestPrequentialEmpty(t *testing.T) {
	p := NewPrequential(3, 100)
	p.Finish()
	if p.PMAUC() != 0 || p.PMGM() != 0 {
		t.Fatal("empty evaluator should report zeros")
	}
}

func TestPrequentialPartialWindowFolding(t *testing.T) {
	p := NewPrequential(2, 100)
	for i := 0; i < 50; i++ {
		p.Add(i%2, i%2, nil)
	}
	p.Finish() // 50 >= 100/10, should fold
	if len(p.SeriesAUC()) != 1 {
		t.Fatalf("partial window not folded: %d windows", len(p.SeriesAUC()))
	}
	p2 := NewPrequential(2, 100)
	p2.Add(0, 0, nil)
	p2.Finish() // 1 < 10, should be dropped
	if len(p2.SeriesAUC()) != 0 {
		t.Fatal("tiny partial window should be dropped")
	}
}

func TestPrequentialMetricsInRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPrequential(4, 50)
		for i := 0; i < 500; i++ {
			scores := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			p.Add(rng.Intn(4), rng.Intn(4), scores)
		}
		p.Finish()
		for _, v := range []float64{p.PMAUC(), p.PMGM(), p.Accuracy()} {
			if v < 0 || v > 100 || math.IsNaN(v) {
				return false
			}
		}
		k := p.Kappa()
		return k >= -100 && k <= 100 && !math.IsNaN(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPairAUCTiesCountHalf(t *testing.T) {
	pos := []int{0}
	neg := []int{1}
	buf := []windowEntry{
		{trueClass: 0, scores: []float64{0.5}},
		{trueClass: 1, scores: []float64{0.5}},
	}
	auc := pairAUC(buf, pos, neg, func(e windowEntry) float64 { return e.scores[0] })
	if math.Abs(auc-0.5) > 1e-9 {
		t.Fatalf("tied scores AUC = %v, want 0.5", auc)
	}
}
