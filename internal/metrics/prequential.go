package metrics

import (
	"math"
	"sort"
)

// windowEntry is one buffered outcome inside the evaluation window.
type windowEntry struct {
	trueClass int
	predicted int
	scores    []float64
}

// Prequential computes windowed multi-class metrics over a stream of
// prediction outcomes, in the test-then-train fashion: each outcome enters
// exactly one window; when a window fills, its pmAUC/pmGM/accuracy/kappa
// values are folded into running prequential means. The paper uses window
// size W = 1000.
type Prequential struct {
	classes int
	window  int
	buf     []windowEntry

	nWindows  float64
	sumAUC    float64
	sumGM     float64
	sumAcc    float64
	sumKappa  float64
	seriesAUC []float64
	seriesGM  []float64
}

// NewPrequential builds an evaluator with the given class count and window
// size (<= 0 selects the paper's 1000).
func NewPrequential(classes, window int) *Prequential {
	if window <= 0 {
		window = 1000
	}
	return &Prequential{classes: classes, window: window}
}

// Add records one prequential outcome. scores may be nil; pmAUC then treats
// the prediction as a degenerate one-hot score vector.
func (p *Prequential) Add(trueClass, predicted int, scores []float64) {
	var sc []float64
	if scores != nil {
		sc = append([]float64(nil), scores...)
	}
	p.buf = append(p.buf, windowEntry{trueClass: trueClass, predicted: predicted, scores: sc})
	if len(p.buf) >= p.window {
		p.flush()
	}
}

// flush folds the current window into the running means.
func (p *Prequential) flush() {
	if len(p.buf) == 0 {
		return
	}
	auc := windowAUC(p.buf, p.classes)
	gm := windowGMean(p.buf, p.classes)
	cm := NewConfusionMatrix(p.classes)
	for _, e := range p.buf {
		cm.Add(e.trueClass, e.predicted)
	}
	p.nWindows++
	p.sumAUC += auc
	p.sumGM += gm
	p.sumAcc += cm.Accuracy()
	p.sumKappa += cm.Kappa()
	p.seriesAUC = append(p.seriesAUC, auc)
	p.seriesGM = append(p.seriesGM, gm)
	p.buf = p.buf[:0]
}

// Finish folds any partial window (call once at end of stream).
func (p *Prequential) Finish() {
	if len(p.buf) >= p.window/10 && len(p.buf) > 1 {
		p.flush()
	} else {
		p.buf = p.buf[:0]
	}
}

// PMAUC returns the prequential multi-class AUC in [0, 100].
func (p *Prequential) PMAUC() float64 {
	if p.nWindows == 0 {
		return 0
	}
	return 100 * p.sumAUC / p.nWindows
}

// PMGM returns the prequential multi-class G-mean in [0, 100].
func (p *Prequential) PMGM() float64 {
	if p.nWindows == 0 {
		return 0
	}
	return 100 * p.sumGM / p.nWindows
}

// Accuracy returns the prequential accuracy in [0, 100].
func (p *Prequential) Accuracy() float64 {
	if p.nWindows == 0 {
		return 0
	}
	return 100 * p.sumAcc / p.nWindows
}

// Kappa returns the prequential Cohen's kappa in [-100, 100].
func (p *Prequential) Kappa() float64 {
	if p.nWindows == 0 {
		return 0
	}
	return 100 * p.sumKappa / p.nWindows
}

// SeriesAUC returns the per-window pmAUC series (fractions in [0,1]).
func (p *Prequential) SeriesAUC() []float64 { return p.seriesAUC }

// SeriesGM returns the per-window pmGM series (fractions in [0,1]).
func (p *Prequential) SeriesGM() []float64 { return p.seriesGM }

// windowAUC computes the Hand & Till M-measure over one window: the mean of
// pairwise AUCs A(i,j) over all unordered class pairs present in the window,
// where A(i,j) uses class-i scores to separate class i from class j.
func windowAUC(buf []windowEntry, classes int) float64 {
	// Group indices per class.
	byClass := make([][]int, classes)
	for idx, e := range buf {
		if e.trueClass >= 0 && e.trueClass < classes {
			byClass[e.trueClass] = append(byClass[e.trueClass], idx)
		}
	}
	score := func(e windowEntry, k int) float64 {
		if e.scores != nil && k < len(e.scores) {
			return e.scores[k]
		}
		if e.predicted == k {
			return 1
		}
		return 0
	}
	sum, pairs := 0.0, 0
	for i := 0; i < classes; i++ {
		if len(byClass[i]) == 0 {
			continue
		}
		for j := i + 1; j < classes; j++ {
			if len(byClass[j]) == 0 {
				continue
			}
			aij := pairAUC(buf, byClass[i], byClass[j], func(e windowEntry) float64 { return score(e, i) })
			aji := pairAUC(buf, byClass[j], byClass[i], func(e windowEntry) float64 { return score(e, j) })
			sum += (aij + aji) / 2
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}

// pairAUC is the Mann-Whitney AUC of positives vs negatives under the given
// scoring function, with ties counted half.
func pairAUC(buf []windowEntry, pos, neg []int, score func(windowEntry) float64) float64 {
	type sv struct {
		s   float64
		pos bool
	}
	all := make([]sv, 0, len(pos)+len(neg))
	for _, i := range pos {
		all = append(all, sv{score(buf[i]), true})
	}
	for _, i := range neg {
		all = append(all, sv{score(buf[i]), false})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].s < all[b].s })
	// Rank-sum with mid-ranks for ties.
	var rankSum float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].s == all[i].s {
			j++
		}
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSum += mid
			}
		}
		i = j
	}
	np, nn := float64(len(pos)), float64(len(neg))
	if np == 0 || nn == 0 {
		return 0.5
	}
	u := rankSum - np*(np+1)/2
	return u / (np * nn)
}

// windowGMean computes the geometric mean of per-class recalls over the
// window, considering only classes that appear in it.
func windowGMean(buf []windowEntry, classes int) float64 {
	hits := make([]float64, classes)
	totals := make([]float64, classes)
	for _, e := range buf {
		if e.trueClass < 0 || e.trueClass >= classes {
			continue
		}
		totals[e.trueClass]++
		if e.trueClass == e.predicted {
			hits[e.trueClass]++
		}
	}
	logSum, n := 0.0, 0
	for k := 0; k < classes; k++ {
		if totals[k] == 0 {
			continue
		}
		r := hits[k] / totals[k]
		n++
		if r <= 0 {
			// One fully-missed class zeroes the geometric mean; floor it
			// slightly so streams remain comparable (standard practice).
			r = 1.0 / (totals[k] + 1)
		}
		logSum += math.Log(r)
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
