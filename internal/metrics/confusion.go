// Package metrics implements the evaluation measures of the paper's
// experimental study: the prequential multi-class AUC (pmAUC, the windowed
// Hand & Till M-measure following Wang & Minku's prequential formulation),
// the prequential multi-class G-mean (pmGM, windowed geometric mean of
// per-class recalls), plus accuracy, Cohen's kappa, and the confusion-matrix
// bookkeeping they share.
package metrics

// ConfusionMatrix accumulates true-class x predicted-class counts.
type ConfusionMatrix struct {
	classes int
	cells   []float64
	total   float64
}

// NewConfusionMatrix builds an empty matrix for the given class count.
func NewConfusionMatrix(classes int) *ConfusionMatrix {
	return &ConfusionMatrix{classes: classes, cells: make([]float64, classes*classes)}
}

// Classes returns the class count.
func (c *ConfusionMatrix) Classes() int { return c.classes }

// Add records one outcome.
func (c *ConfusionMatrix) Add(trueClass, predicted int) {
	if trueClass < 0 || trueClass >= c.classes || predicted < 0 || predicted >= c.classes {
		return
	}
	c.cells[trueClass*c.classes+predicted]++
	c.total++
}

// Count returns the cell (trueClass, predicted).
func (c *ConfusionMatrix) Count(trueClass, predicted int) float64 {
	return c.cells[trueClass*c.classes+predicted]
}

// Total returns the number of recorded outcomes.
func (c *ConfusionMatrix) Total() float64 { return c.total }

// ClassTotal returns the number of instances whose true class is k.
func (c *ConfusionMatrix) ClassTotal(k int) float64 {
	t := 0.0
	for j := 0; j < c.classes; j++ {
		t += c.cells[k*c.classes+j]
	}
	return t
}

// PredictedTotal returns the number of instances predicted as k.
func (c *ConfusionMatrix) PredictedTotal(k int) float64 {
	t := 0.0
	for i := 0; i < c.classes; i++ {
		t += c.cells[i*c.classes+k]
	}
	return t
}

// Accuracy returns the fraction of correct predictions.
func (c *ConfusionMatrix) Accuracy() float64 {
	if c.total == 0 {
		return 0
	}
	hit := 0.0
	for k := 0; k < c.classes; k++ {
		hit += c.cells[k*c.classes+k]
	}
	return hit / c.total
}

// Recall returns the recall of class k (0 when the class is absent).
func (c *ConfusionMatrix) Recall(k int) float64 {
	t := c.ClassTotal(k)
	if t == 0 {
		return 0
	}
	return c.cells[k*c.classes+k] / t
}

// Kappa returns Cohen's kappa agreement statistic.
func (c *ConfusionMatrix) Kappa() float64 {
	if c.total == 0 {
		return 0
	}
	po := c.Accuracy()
	pe := 0.0
	for k := 0; k < c.classes; k++ {
		pe += c.ClassTotal(k) / c.total * c.PredictedTotal(k) / c.total
	}
	if pe >= 1 {
		return 0
	}
	return (po - pe) / (1 - pe)
}

// Reset clears the matrix.
func (c *ConfusionMatrix) Reset() {
	for i := range c.cells {
		c.cells[i] = 0
	}
	c.total = 0
}
