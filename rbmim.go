package rbmim

import (
	"errors"
	"fmt"
	"io"

	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/eval"
	"rbmim/internal/monitor"
	"rbmim/internal/realworld"
	"rbmim/internal/server"
	"rbmim/internal/stream"
	"rbmim/internal/synth"
	"rbmim/internal/telemetry"
)

// Observation is one prequential outcome handed to a detector.
type Observation = detectors.Observation

// State is a detector's output after one observation.
type State = detectors.State

// Detector states.
const (
	None    = detectors.None
	Warning = detectors.Warning
	Drift   = detectors.Drift
)

// Detector is the common drift-detector interface shared by RBM-IM and all
// reference detectors.
type Detector = detectors.Detector

// BatchDetector is implemented by detectors with a native batched update
// path (RBM-IM). UpdateBatch is observationally equivalent to a sequential
// Update loop; batching amortizes dispatch and scratch setup per block.
type BatchDetector = detectors.BatchDetector

// UpdateBatch feeds a block of observations to det, taking its native
// batched path when it implements BatchDetector and falling back to a
// per-observation loop otherwise. states must have at least len(obs)
// elements; states[i] is the state Update would have returned for obs[i].
func UpdateBatch(det Detector, obs []Observation, states []State) {
	detectors.UpdateBatch(det, obs, states)
}

// ClassAttributor is implemented by detectors that attribute drifts to
// specific classes (RBM-IM, DDM-OCI).
type ClassAttributor = detectors.ClassAttributor

// StatefulDetector is implemented by detectors whose trained state can be
// checkpointed and restored (RBM-IM natively — bit-identical resume — plus
// the DDM, EDDM and ADWIN baselines). See SaveDetector / LoadDetector.
type StatefulDetector = detectors.StatefulDetector

// ErrNotStateful is returned by SaveDetector / LoadDetector for detectors
// that do not implement StatefulDetector.
var ErrNotStateful = errors.New("rbmim: detector does not support checkpointing")

// SaveDetector writes det's complete mutable state to w as one versioned,
// CRC-protected binary frame. For RBM-IM the snapshot is exact: restoring it
// and continuing to train is bit-identical to never stopping (weights, class
// counts, scaler bounds, per-class trend statistics, partially filled
// mini-batch, and RNG position are all captured). Returns ErrNotStateful
// when det cannot serialize.
func SaveDetector(det Detector, w io.Writer) error {
	sd, ok := det.(StatefulDetector)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotStateful, det.Name())
	}
	return sd.SaveState(w)
}

// LoadDetector restores det from a snapshot written by SaveDetector for an
// identically configured detector of the same type. Corrupt, truncated, or
// mismatched input returns an error and leaves det completely unchanged.
func LoadDetector(det Detector, r io.Reader) error {
	sd, ok := det.(StatefulDetector)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotStateful, det.Name())
	}
	return sd.LoadState(r)
}

// DetectorConfig parameterizes RBM-IM (see internal/core.Config; zero values
// select the paper-aligned defaults).
type DetectorConfig = core.Config

// RBMIM is the paper's contribution: the trainable, skew-insensitive,
// per-class drift detector.
type RBMIM = core.Detector

// NewDetector builds an RBM-IM detector. Features and Classes are required;
// every other field defaults sensibly.
func NewDetector(cfg DetectorConfig) (*RBMIM, error) {
	if !cfg.AdaptiveWindow {
		// The self-adaptive window is a core design element of the paper;
		// the public constructor enables it. Construct core.Detector
		// directly to study the fixed-window ablation.
		cfg.AdaptiveWindow = true
	}
	return core.NewDetector(cfg)
}

// Reference detector constructors, re-exported for side-by-side comparisons.
var (
	// NewDDM builds the Drift Detection Method (Gama et al. 2004).
	NewDDM = func() Detector { return detectors.NewDDM() }
	// NewEDDM builds the Early Drift Detection Method.
	NewEDDM = func() Detector { return detectors.NewEDDM() }
	// NewRDDM builds the Reactive Drift Detection Method.
	NewRDDM = func() Detector { return detectors.NewRDDM() }
	// NewADWIN builds the adaptive-windowing detector.
	NewADWIN = func() Detector { return detectors.NewADWINDetector(0.002) }
	// NewHDDMA builds the Hoeffding-bound A-test detector.
	NewHDDMA = func() Detector { return detectors.NewHDDMA() }
	// NewFHDDM builds the Fast Hoeffding Drift Detection Method.
	NewFHDDM = func() Detector { return detectors.NewFHDDM(0, 0) }
)

// NewWSTD builds the Wilcoxon rank-sum test detector (zero values select
// defaults).
func NewWSTD(windowSize int, warningSig, driftSig float64, maxOld int) Detector {
	return detectors.NewWSTD(windowSize, warningSig, driftSig, maxOld)
}

// NewPerfSim builds the confusion-matrix-similarity detector for a stream
// with the given class count.
func NewPerfSim(classes int) Detector { return detectors.NewPerfSim(classes, 0, 0, 0) }

// NewDDMOCI builds the per-class-recall detector for online class imbalance.
func NewDDMOCI(classes int) Detector { return detectors.NewDDMOCI(classes, 0, 0) }

// Stream types.
type (
	// Instance is one labeled observation.
	Instance = stream.Instance
	// Schema describes a stream's shape.
	Schema = stream.Schema
	// Stream is a source of instances.
	Stream = stream.Stream
	// DriftKind selects sudden / gradual / incremental transitions.
	DriftKind = stream.DriftKind
	// DriftEvent is a ground-truth concept change.
	DriftEvent = stream.DriftEvent
	// GeneratorConfig is the shared generator parameter set.
	GeneratorConfig = synth.Config
)

// Drift kinds.
const (
	SuddenDrift      = stream.Sudden
	GradualDrift     = stream.Gradual
	IncrementalDrift = stream.Incremental
)

// Generator constructors (multi-class re-implementations of the MOA
// families used in the paper's artificial benchmarks).
func NewHyperplane(cfg GeneratorConfig, driftSpeed float64) (Stream, error) {
	return synth.NewHyperplane(cfg, driftSpeed)
}

// NewRBF builds the radial-basis-function generator.
func NewRBF(cfg GeneratorConfig, centroidsPerClass int, spread float64) (Stream, error) {
	return synth.NewRBF(cfg, centroidsPerClass, spread)
}

// NewRandomTree builds the random-tree generator.
func NewRandomTree(cfg GeneratorConfig, depth int) (Stream, error) {
	return synth.NewRandomTree(cfg, depth)
}

// NewAgrawal builds the multi-class Agrawal generator with the given scoring
// function (0..9).
func NewAgrawal(cfg GeneratorConfig, function int) (Stream, error) {
	return synth.NewAgrawal(cfg, function)
}

// NewSEA builds the SEA-concepts generator.
func NewSEA(cfg GeneratorConfig, offset float64) (Stream, error) {
	return synth.NewSEA(cfg, offset)
}

// NewDriftStream composes two concepts with a transition of the given kind
// at position (width ignored for sudden drift).
func NewDriftStream(before, after Stream, kind DriftKind, position, width int, seed int64) Stream {
	return stream.NewDriftStream(before, after, kind, position, width, seed)
}

// NewLocalDriftInjector injects a real concept drift affecting only the
// given classes, starting at position.
func NewLocalDriftInjector(base Stream, classes []int, kind DriftKind, position, width int, seed int64) Stream {
	return stream.NewLocalDriftInjector(base, classes, kind, position, width, seed)
}

// NewImbalanced reshapes any stream to a static geometric class skew with
// the given maximum imbalance ratio.
func NewImbalanced(base Stream, ir float64, seed int64) Stream {
	return stream.NewImbalanceWrapper(base, stream.NewStaticSkew(base.Schema().Classes, ir), seed)
}

// NewDynamicImbalance reshapes any stream with an oscillating imbalance
// ratio in [irLow, irHigh]; roleSwitchEvery > 0 additionally rotates class
// roles (majority becomes minority and vice versa) at that period.
func NewDynamicImbalance(base Stream, irLow, irHigh float64, period, roleSwitchEvery int, seed int64) Stream {
	sched := stream.NewDynamicSkew(base.Schema().Classes, irLow, irHigh, period)
	sched.RoleSwitchEvery = roleSwitchEvery
	return stream.NewImbalanceWrapper(base, sched, seed)
}

// Multi-stream monitor re-exports: a sharded, concurrent service hosting one
// independent drift detector per stream (see internal/monitor).
type (
	// Monitor multiplexes many independent streams over worker shards.
	Monitor = monitor.Monitor
	// MonitorConfig parameterizes a Monitor; the Detector field is the
	// RBM-IM template applied to every stream.
	MonitorConfig = monitor.Config
	// MonitorEvent is one detected drift on one monitored stream.
	MonitorEvent = monitor.Event
	// MonitorSnapshot is a point-in-time aggregate view of a Monitor.
	MonitorSnapshot = monitor.Snapshot
	// DetectorFactory builds a detector for a newly observed stream
	// (MonitorConfig.NewDetector).
	DetectorFactory = monitor.Factory
	// CheckpointConfig enables detector-state persistence on a Monitor
	// (MonitorConfig.Checkpoint): periodic snapshots, spill on evict/idle-GC,
	// rehydration on re-ingest, and a Close-time flush.
	CheckpointConfig = monitor.CheckpointConfig
	// CheckpointStore persists per-stream detector snapshots; implement it to
	// back checkpoints with your own storage, or use NewMemStore /
	// NewFSStore.
	CheckpointStore = monitor.Store
	// MemStore is the in-process CheckpointStore.
	MemStore = monitor.MemStore
	// FSStore is the one-file-per-stream filesystem CheckpointStore.
	FSStore = monitor.FSStore
	// MonitorSubscription is one subscriber's private, bounded drift-event
	// queue on an in-process Monitor (Monitor.Subscribe). Each subscriber
	// receives every event; a slow one drops only its own.
	MonitorSubscription = monitor.Subscription
)

// Observability re-exports: per-stage latency histograms and the drift
// flight recorder (see internal/telemetry and MonitorSnapshot.Latency).
type (
	// TelemetryLevel selects how much of the hot path is timed
	// (MonitorConfig.Telemetry, ServerConfig.Telemetry). The zero value is
	// TelemetryFull: telemetry is on by default and never changes drift
	// decisions.
	TelemetryLevel = telemetry.Level
	// TelemetryStage is one stage's latency summary: count, sum, p50/p95/p99
	// estimates, and the raw log2 bucket counts (mergeable across processes).
	TelemetryStage = telemetry.Stage
	// DriftRecord is the flight-recorder record attached to a drift: the
	// recent per-class reconstruction-error / trend-slope / ADWIN-width
	// samples leading up to it (MonitorEvent.Record, Client.LastDrift).
	DriftRecord = core.DriftRecord
	// DriftSample is one flight-recorder sample.
	DriftSample = core.DriftSample
	// DriftReport is a stream's most recent drift with its flight-recorder
	// record (Monitor.LastDrift, Client.LastDrift).
	DriftReport = monitor.DriftReport
)

// Telemetry levels.
const (
	TelemetryFull  = telemetry.Full
	TelemetryBasic = telemetry.Basic
	TelemetryOff   = telemetry.Off
)

// ParseTelemetryLevel parses "full" (or ""), "basic", or "off".
func ParseTelemetryLevel(s string) (TelemetryLevel, error) { return telemetry.ParseLevel(s) }

// MergeTelemetryStages folds per-process stage sets into one: histograms
// with the same stage name sum bucket-wise and the quantiles are
// recomputed from the merged buckets (what MergeSnapshots uses for
// MonitorSnapshot.Latency).
func MergeTelemetryStages(groups ...[]TelemetryStage) []TelemetryStage {
	return telemetry.MergeStages(groups...)
}

// NewMemStore builds an in-memory checkpoint store (spill-and-rehydrate
// within one process, tests).
func NewMemStore() *MemStore { return monitor.NewMemStore() }

// NewFSStore builds a filesystem checkpoint store rooted at dir (one
// atomically replaced file per stream), creating the directory if needed.
// Checkpoints survive process restarts: a new Monitor pointed at the same
// directory rehydrates every stream on first ingest.
func NewFSStore(dir string) (*FSStore, error) { return monitor.NewFSStore(dir) }

// ErrMonitorClosed is returned by Monitor methods after Close.
var ErrMonitorClosed = monitor.ErrClosed

// NewMonitor builds and starts a sharded multi-stream drift monitor. Streams
// are created lazily on first Ingest, placed on shards by consistent hashing
// of the stream ID, and evicted explicitly or after MonitorConfig.IdleTTL of
// inactivity. Producers holding blocks of observations should prefer
// Monitor.IngestBatch: a block travels the shard queue as one slab-copied
// envelope and reaches the stream's detector in one batched update.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) { return monitor.New(cfg) }

// Network serving layer re-exports: a Monitor served over TCP with a
// codec-framed binary protocol (see internal/server), and the matching
// client whose steady-state batch ingest allocates nothing.
type (
	// Server exposes a Monitor over TCP plus an optional HTTP sidecar
	// (/healthz, Prometheus /metrics).
	Server = server.Server
	// ServerConfig parameterizes a Server; Monitor is required.
	ServerConfig = server.Config
	// Client speaks the driftserver wire protocol: Ingest / IngestBatch /
	// TryIngestBatch / Subscribe / Snapshot / Evict / FlushCheckpoints /
	// Close. One Client owns one connection and its scratch buffers, so
	// steady-state batch ingest is allocation-free; use one Client per
	// producer goroutine.
	Client = server.Client
	// ClientSubscription is a server-pushed drift-event stream on its own
	// connection (Client.Subscribe).
	ClientSubscription = server.Subscription
	// ClientPending is the handle of an asynchronous pipelined request
	// (Client.IngestAsync / Client.IngestBatchAsync); Wait must be called
	// exactly once.
	ClientPending = server.Pending
	// ClientPool fans many logical streams over a fixed set of pipelined
	// connections with consistent-hash stream-to-connection affinity, so
	// per-stream ordering survives the multiplexing.
	ClientPool = server.ClientPool
)

// DefaultClientWindow is the in-flight request window Dial selects.
const DefaultClientWindow = server.DefaultWindow

// NewServer builds a Server and starts serving immediately. The server
// borrows the Monitor: Server.Close tears down only the network side, and
// closing the Monitor afterwards flushes the checkpoint store — the
// graceful-shutdown order cmd/driftserver implements.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Dial connects a Client to a driftserver at addr ("host:port").
func Dial(addr string) (*Client, error) { return server.Dial(addr) }

// DialWindow connects a Client with an explicit in-flight request window: up
// to window requests may be outstanding (Client.IngestAsync /
// Client.IngestBatchAsync) before the next call blocks. Window 1 degenerates
// to a serial stop-and-wait client.
func DialWindow(addr string, window int) (*Client, error) { return server.DialWindow(addr, window) }

// DialPool opens conns pipelined connections to addr, each with the given
// in-flight window, and multiplexes streams across them by consistent
// hashing of the stream ID.
func DialPool(addr string, conns, window int) (*ClientPool, error) {
	return server.DialPool(addr, conns, window)
}

// RetryPolicy configures how a Client survives failure: reconnect with
// capped jittered exponential backoff, Busy retries, request deadlines, and
// a stall watchdog. The zero value disables every mechanism (what Dial,
// DialWindow, and DialPool use).
type RetryPolicy = server.RetryPolicy

// ErrorClass is the retry-relevant classification of a client error; see
// Classify.
type ErrorClass = server.ErrorClass

// The client error classes; see Classify.
const (
	ErrorClassApp       = server.ClassApp
	ErrorClassTransport = server.ClassTransport
	ErrorClassProtocol  = server.ClassProtocol
	ErrorClassBusy      = server.ClassBusy
	ErrorClassClosed    = server.ClassClosed
	ErrorClassDeadline  = server.ClassDeadline
)

// DefaultRetryPolicy returns the production retry shape: reconnect,
// backoff, Busy retries, stall watchdog; request timeouts stay opt-in.
func DefaultRetryPolicy() RetryPolicy { return server.DefaultRetryPolicy() }

// DialRetry connects a Client with an explicit in-flight window and retry
// policy — the entry point for clients that must survive real networks.
// Requests that were in flight when a connection died are resent on the
// replacement connection, exactly once server-side (session/seq dedup).
func DialRetry(addr string, window int, policy RetryPolicy) (*Client, error) {
	return server.DialRetry(addr, window, policy)
}

// DialPoolRetry is DialPool with a retry policy applied to every
// connection; the pool's connections share one exactly-once identity, and
// streams fail over deterministically off permanently dead connections.
func DialPoolRetry(addr string, conns, window int, policy RetryPolicy) (*ClientPool, error) {
	return server.DialPoolRetry(addr, conns, window, policy)
}

// ClusterClient shards the stream space across a driftserver fleet with a
// client-side consistent-hash ring, drives each member through its own
// retrying ClientPool, and migrates live streams between members via
// checkpoint handoff (ClusterClient.Migrate, ClusterClient.Rebalance). A
// migrated stream's detector continues bit-identically to never having
// moved.
type ClusterClient = server.ClusterClient

// ClusterConfig parameterizes DialCluster; Addrs is required and every
// other zero value selects a default.
type ClusterConfig = server.ClusterConfig

// ClusterMemberSnapshot is one fleet member's snapshot labelled with its
// address (ClusterClient.MemberSnapshots).
type ClusterMemberSnapshot = server.MemberSnapshot

// DialCluster connects to every member of a driftserver fleet and returns
// the consistent-hash routing client.
func DialCluster(cfg ClusterConfig) (*ClusterClient, error) { return server.DialCluster(cfg) }

// IsStreamNotFound reports whether err is a ClusterClient.Migrate /
// Client.Migrate failure for a stream the source server neither hosts nor
// has checkpointed.
func IsStreamNotFound(err error) bool { return server.IsStreamNotFound(err) }

// MergeSnapshots folds per-member monitor snapshots into one fleet-wide
// view: counters and per-class drift counts sum, per-shard breakdowns
// concatenate, and the conservation identity Received == Ingested +
// Rejected + Queued survives the merge.
func MergeSnapshots(sns ...MonitorSnapshot) MonitorSnapshot { return monitor.MergeSnapshots(sns...) }

// Classify returns the retry-relevant class of an error returned by Client,
// ClientPool, or ClientPending methods.
func Classify(err error) ErrorClass { return server.Classify(err) }

// ErrClientClosed is returned by Client methods after Client.Close.
var ErrClientClosed = server.ErrClientClosed

// ErrBusy is returned when the server sheds load (ServerConfig.
// ShedHighWater) and the client's Busy retries are exhausted or disabled.
var ErrBusy = server.ErrBusy

// ErrDeadlineExceeded is returned when a request deadline
// (RetryPolicy.RequestTimeout, ClientPending.WaitTimeout/WaitDeadline)
// expires before the reply arrives.
var ErrDeadlineExceeded = server.ErrDeadlineExceeded

// ErrServerDrain marks a connection the server closed cleanly at a frame
// boundary (graceful shutdown), as opposed to a mid-frame cut, which
// surfaces as an error wrapping io.ErrUnexpectedEOF.
var ErrServerDrain = server.ErrServerDrain

// Evaluation harness re-exports.
type (
	// PipelineConfig configures one prequential run.
	PipelineConfig = eval.PipelineConfig
	// Result summarizes one prequential run.
	Result = eval.Result
	// BenchmarkStream is one of the paper's 24 Table I benchmarks.
	BenchmarkStream = eval.BenchmarkStream
	// RealWorldSpec describes one real-world surrogate (Table I row).
	RealWorldSpec = realworld.Spec
)

// RunPipeline executes the prequential test-then-train loop binding a
// stream, the cost-sensitive perceptron tree, and a detector.
func RunPipeline(s Stream, det Detector, cfg PipelineConfig) Result {
	return eval.RunPipeline(s, det, cfg)
}

// Benchmarks returns the 24 Table I benchmark streams.
func Benchmarks() []BenchmarkStream { return eval.AllBenchmarks() }

// RealWorldSpecs returns the 12 real-world surrogate specifications.
func RealWorldSpecs() []RealWorldSpec { return realworld.All() }
