// Command benchguard turns `go test -bench` output into a regression gate
// for the kernel-path benchmarks. It reads benchmark output on stdin, keeps
// every benchmark that reports the custom "ns/obs" metric (taking the best
// of repeated -count runs, which is the least-interfered sample), and:
//
//   - in check mode (default) compares each benchmark against the newest
//     record in the baseline trajectory file, failing when ns/obs regressed
//     by more than -threshold (relative); with -minspeedup > 0 it also
//     fails when any measured batch-path speedup over its /seq sibling
//     falls below the floor;
//   - with -update it appends the run as a new record to the baseline file
//     (an array of records, one per invocation — append, never overwrite),
//     creating the file when missing.
//
// By default the `-N` GOMAXPROCS suffix `go test` appends to benchmark names
// is stripped, so runs at different parallelism levels share one baseline
// key. With -percpu the suffix is kept as an explicit `@cpuN` component —
// the mode for `go test -cpu 1,4,8` sweeps, where each parallelism level is
// its own gated series (a regression that only appears at 8 procs must not
// hide behind a healthy single-proc number).
//
// Usage:
//
//	go test -run xxx -bench BenchmarkTrainBatchKernels ./internal/core/ |
//	    go run ./scripts/benchguard -baseline BENCH_core.json [-threshold 0.25]
//	    [-minspeedup 1.5] [-percpu] [-update]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// record is one benchguard invocation in the baseline trajectory file.
type record struct {
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go_version"`
	GOARCH     string             `json:"goarch"`
	Benchmarks []benchmark        `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups,omitempty"`
}

type benchmark struct {
	Name     string  `json:"name"`
	NsPerObs float64 `json:"ns_per_obs"`
}

// benchLine matches one `go test -bench` result line carrying the ns/obs
// metric, e.g.:
//
//	BenchmarkTrainBatchKernels/V20/B256/batch-4  3082  808167 ns/op  3157 ns/obs
//
// Group 2 is the `-N` GOMAXPROCS suffix (kept as a key component in -percpu
// mode, dropped otherwise).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+[\d.]+ ns/op.*?\s([\d.]+) ns/obs`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_core.json", "baseline trajectory file")
	threshold := flag.Float64("threshold", 0.25, "maximum tolerated relative ns/obs regression vs the baseline")
	minSpeedup := flag.Float64("minspeedup", 0, "minimum tolerated batch-vs-seq speedup (0 disables the floor)")
	update := flag.Bool("update", false, "append this run to the baseline file instead of checking")
	perCPU := flag.Bool("percpu", false, "keep the -N GOMAXPROCS suffix as an @cpuN key component (for go test -cpu sweeps)")
	flag.Parse()

	got := parseRuns(os.Stdin, *perCPU)
	if len(got) == 0 {
		fail(fmt.Errorf("no benchmark lines with an ns/obs metric on stdin"))
	}
	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)

	speedups := map[string]float64{}
	for _, name := range names {
		// In -percpu mode the key carries an @cpuN tail; pair batch/seq
		// within the same parallelism level.
		base, cpu := name, ""
		if i := strings.LastIndex(base, "@cpu"); i >= 0 {
			base, cpu = name[:i], name[i:]
		}
		if !strings.HasSuffix(base, "/batch") {
			continue
		}
		stem := strings.TrimSuffix(base, "/batch")
		if seq, ok := got[stem+"/seq"+cpu]; ok {
			speedups[stem+cpu] = seq / got[name]
		}
	}
	for _, name := range names {
		fmt.Printf("%-60s %10.0f ns/obs\n", name, got[name])
	}
	for _, pair := range sortedKeys(speedups) {
		fmt.Printf("%-60s %9.2fx vs seq\n", pair, speedups[pair])
	}

	if *update {
		if err := appendRecord(*baselinePath, record{
			Generated:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOARCH:     runtime.GOARCH,
			Benchmarks: toList(names, got),
			Speedups:   speedups,
		}); err != nil {
			fail(err)
		}
		fmt.Printf("appended run record to %s\n", *baselinePath)
		return
	}

	base, err := latestRecord(*baselinePath)
	if err != nil {
		fail(err)
	}
	failed := false
	for _, b := range base.Benchmarks {
		now, ok := got[b.Name]
		if !ok {
			continue
		}
		limit := b.NsPerObs * (1 + *threshold)
		if now > limit {
			fmt.Fprintf(os.Stderr, "benchguard: %s regressed: %.0f ns/obs vs baseline %.0f (limit %.0f)\n",
				b.Name, now, b.NsPerObs, limit)
			failed = true
		}
	}
	if *minSpeedup > 0 {
		for _, pair := range sortedKeys(speedups) {
			if speedups[pair] < *minSpeedup {
				fmt.Fprintf(os.Stderr, "benchguard: %s batch speedup %.2fx below the %.2fx floor\n",
					pair, speedups[pair], *minSpeedup)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchguard: ok (threshold %.0f%%, baseline %s)\n", *threshold*100, base.Generated)
}

// parseRuns collects the best (minimum) ns/obs per benchmark name from the
// stream — repeated -count runs measure the same code, so the minimum is
// the sample least distorted by machine noise. With perCPU each GOMAXPROCS
// suffix keys its own series.
func parseRuns(f *os.File, perCPU bool) map[string]float64 {
	got := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		if perCPU && m[2] != "" {
			name += "@cpu" + m[2]
		}
		if old, ok := got[name]; !ok || v < old {
			got[name] = v
		}
	}
	return got
}

func toList(names []string, got map[string]float64) []benchmark {
	out := make([]benchmark, 0, len(names))
	for _, name := range names {
		out = append(out, benchmark{Name: name, NsPerObs: got[name]})
	}
	return out
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func latestRecord(path string) (record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return record{}, fmt.Errorf("reading baseline: %w (run with -update to create it)", err)
	}
	var records []record
	if err := json.Unmarshal(data, &records); err != nil {
		return record{}, fmt.Errorf("baseline %s is not a record array: %w", path, err)
	}
	if len(records) == 0 {
		return record{}, fmt.Errorf("baseline %s is empty", path)
	}
	return records[len(records)-1], nil
}

// appendRecord appends rec to the JSON array at path, creating it when
// missing — the file is a growing benchmark trajectory, like
// BENCH_monitor.json.
func appendRecord(path string, rec record) error {
	var records []record
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("existing %s is not a record array: %w", path, err)
		}
	}
	records = append(records, rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
