// Command stattests reproduces the statistical analysis of the paper:
// Figures 4-5 (Bonferroni-Dunn critical-distance diagrams over the Friedman
// ranks of Table III) and Figures 6-7 (Bayesian signed tests comparing
// RBM-IM against PerfSim and DDM-OCI under pmAUC and pmGM). It first runs
// the Table III experiment at the requested scale, then derives the tests.
//
// Usage:
//
//	stattests [-scale 0.02] [-seed 42] [-rope 1.0] [-benchmarks A,B,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rbmim/internal/eval"
)

func main() {
	scale := flag.Float64("scale", 0.02, "fraction of each benchmark's full length")
	seed := flag.Int64("seed", 42, "random seed")
	window := flag.Int("window", 1000, "prequential metric window")
	rope := flag.Float64("rope", 1.0, "region of practical equivalence (metric points)")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 24)")
	parallel := flag.Int("parallel", 0, "worker goroutines (default: NumCPU)")
	flag.Parse()

	cfg := eval.Table3Config{
		Scale:        *scale,
		Seed:         *seed,
		MetricWindow: *window,
		Parallelism:  *parallel,
	}
	if *benchmarks != "" {
		cfg.Benchmarks = strings.Split(*benchmarks, ",")
	}
	out, err := eval.RunTable3(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stattests:", err)
		os.Exit(1)
	}

	fmt.Println("=== Figures 4-5: Friedman ranks + Bonferroni-Dunn ===")
	eval.WriteRankAnalysis(os.Stdout, out, "pmauc")
	fmt.Println()
	eval.WriteRankAnalysis(os.Stdout, out, "pmgm")

	fmt.Println()
	fmt.Println("=== Figures 6-7: Bayesian signed tests vs RBM-IM ===")
	for _, metric := range []string{"pmauc", "pmgm"} {
		for _, baseline := range []string{"PerfSim", "DDM-OCI"} {
			if err := eval.WriteBayesianComparison(os.Stdout, out, baseline, "RBM-IM", metric, *rope, *seed); err != nil {
				fmt.Fprintln(os.Stderr, "stattests:", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
}
