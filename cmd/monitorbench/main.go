// Command monitorbench stress-tests the sharded multi-stream Monitor: it
// fans a population of independent RBF streams (each with its own drift
// schedule) across the monitor's shards from several producer goroutines,
// then reports per-shard balance, throughput, and drift-event counts for
// each shard count in the sweep. The throughput table demonstrates shard
// scaling — per-stream detectors are independent, so ingestion parallelizes
// until the producers or the memory bus saturate.
//
// Usage:
//
//	monitorbench [-streams 256] [-instances 4000] [-features 20] [-classes 5]
//	             [-shards 1,2,4,8] [-producers 0] [-drift]
//
// With -drift every stream undergoes a sudden concept change halfway
// through, so the drift-event column should be non-zero for most streams.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rbmim"
	"rbmim/internal/synth"
)

func main() {
	streams := flag.Int("streams", 256, "independent streams to multiplex")
	instances := flag.Int("instances", 4000, "observations per stream")
	features := flag.Int("features", 20, "features per stream")
	classes := flag.Int("classes", 5, "classes per stream")
	shardList := flag.String("shards", "", "comma-separated shard counts to sweep (default 1,2,4,...,NumCPU)")
	producers := flag.Int("producers", 0, "producer goroutines (default NumCPU)")
	drift := flag.Bool("drift", false, "inject a sudden drift halfway through every stream")
	queue := flag.Int("queue", 4096, "per-shard queue capacity")
	flag.Parse()

	shardCounts := parseShards(*shardList)
	if *producers <= 0 {
		*producers = runtime.NumCPU()
	}

	fmt.Printf("monitorbench: %d streams x %d instances, %d features, %d classes, %d producers (GOMAXPROCS=%d)\n\n",
		*streams, *instances, *features, *classes, *producers, runtime.GOMAXPROCS(0))

	// Pre-draw every stream's observations so the sweep measures the monitor,
	// not the generators.
	workload, err := buildWorkload(*streams, *instances, *features, *classes, *drift)
	if err != nil {
		fail(err)
	}

	fmt.Printf("%-8s %-14s %-12s %-10s %-10s %s\n", "shards", "instances/s", "wall", "drifts", "streams", "shard balance (ingested)")
	var base float64
	for _, shards := range shardCounts {
		res, err := runSweep(workload, *features, *classes, shards, *producers, *queue)
		if err != nil {
			fail(err)
		}
		speedup := ""
		if base == 0 {
			base = res.rate
		} else {
			speedup = fmt.Sprintf("  (%.2fx vs 1 shard)", res.rate/base)
		}
		fmt.Printf("%-8d %-14s %-12s %-10d %-10d %s%s\n",
			shards, fmt.Sprintf("%.0f", res.rate), res.wall.Round(time.Millisecond),
			res.drifts, res.streams, res.balance, speedup)
	}
}

type workloadStream struct {
	id  string
	obs []rbmim.Observation
}

type sweepResult struct {
	rate    float64
	wall    time.Duration
	drifts  uint64
	streams int
	balance string
}

// buildWorkload pre-generates every stream's observation sequence.
func buildWorkload(streams, instances, features, classes int, drift bool) ([]workloadStream, error) {
	out := make([]workloadStream, streams)
	for s := range out {
		cfg := synth.Config{Features: features, Classes: classes, Seed: int64(1000 + s)}
		var src rbmim.Stream
		src, err := synth.NewRBF(cfg, 3, 0.08)
		if err != nil {
			return nil, err
		}
		if drift {
			afterCfg := cfg
			afterCfg.Seed = cfg.Seed + 500000
			after, err := synth.NewRBF(afterCfg, 3, 0.08)
			if err != nil {
				return nil, err
			}
			src = rbmim.NewDriftStream(src, after, rbmim.SuddenDrift, instances/2, 0, cfg.Seed)
		}
		obs := make([]rbmim.Observation, instances)
		for i := range obs {
			in := src.Next()
			obs[i] = rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
		}
		out[s] = workloadStream{id: fmt.Sprintf("stream-%04d", s), obs: obs}
	}
	return out, nil
}

// runSweep replays the whole workload through a fresh monitor with the given
// shard count, producers feeding disjoint stream subsets.
func runSweep(workload []workloadStream, features, classes, shards, producers, queue int) (sweepResult, error) {
	m, err := rbmim.NewMonitor(rbmim.MonitorConfig{
		Detector: rbmim.DetectorConfig{
			Features: features,
			Classes:  classes,
			Seed:     7,
		},
		Shards:    shards,
		QueueSize: queue,
	})
	if err != nil {
		return sweepResult{}, err
	}
	// Drain events so slow consumers never distort the measurement.
	go func() {
		for range m.Events() {
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for s := p; s < len(workload); s += producers {
				ws := workload[s]
				for i := range ws.obs {
					if err := m.Ingest(ws.id, ws.obs[i]); err != nil {
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	m.Close()
	wall := time.Since(start)

	sn := m.Snapshot()
	return sweepResult{
		rate:    float64(sn.Ingested) / wall.Seconds(),
		wall:    wall,
		drifts:  sn.Drifts,
		streams: sn.Streams,
		balance: balanceString(sn.ShardIngested),
	}, nil
}

// balanceString compacts the per-shard ingest counts into min/median/max.
func balanceString(loads []uint64) string {
	if len(loads) == 0 {
		return "-"
	}
	sorted := append([]uint64(nil), loads...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return fmt.Sprintf("min=%d med=%d max=%d", sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1])
}

// parseShards expands the -shards flag, defaulting to powers of two up to
// NumCPU.
func parseShards(s string) []int {
	if s == "" {
		var out []int
		for n := 1; n <= runtime.NumCPU(); n *= 2 {
			out = append(out, n)
		}
		if last := out[len(out)-1]; last != runtime.NumCPU() {
			out = append(out, runtime.NumCPU())
		}
		return out
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fail(fmt.Errorf("bad -shards entry %q", part))
		}
		out = append(out, n)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "monitorbench:", err)
	os.Exit(1)
}
