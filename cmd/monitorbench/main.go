// Command monitorbench stress-tests the sharded multi-stream Monitor: it
// fans a population of independent RBF streams (each with its own drift
// schedule) across the monitor's shards from several producer goroutines,
// then reports per-shard balance, throughput, and drift-event counts for
// each shard count in the sweep. The throughput table demonstrates shard
// scaling — per-stream detectors are independent, so ingestion parallelizes
// until the producers or the memory bus saturate.
//
// Usage:
//
//	monitorbench [-streams 256] [-instances 4000] [-features 20] [-classes 5]
//	             [-shards 1,2,4,8|auto] [-producers 0] [-procs 1,4,8] [-drift]
//	             [-batch 256] [-json BENCH_monitor.json]
//	             [-checkpoint mem|DIR] [-ckptint 500ms]
//	             [-remote ADDR] [-clients N] [-conns K] [-inflight W] [-churn S]
//	             [-retry] [-chaosreset N] [-chaosdelay D] [-chaosdup P]
//	             [-chaosdrop P] [-chaosseed S]
//	             [-cluster ADDR1,ADDR2,...] [-migrate M]
//
// With -drift every stream undergoes a sudden concept change halfway
// through, so the drift-event column should be non-zero for most streams.
// With -batch N > 0 every shard count is swept twice — per-instance Ingest
// and N-observation IngestBatch — and each batched row reports its speedup
// over the per-instance row. With -json the run is appended as one record
// to the given trajectory file (an array of runs, one per invocation).
// With -checkpoint the monitor persists every stream's detector state on the
// -ckptint cadence ("mem" = in-memory store, anything else = filesystem
// store rooted at that directory, one fresh subdirectory per sweep), so the
// throughput table shows what checkpointing costs the ingest path.
//
// With -procs the whole sweep repeats under each GOMAXPROCS value — the
// multi-core scaling table: the instances/s column is aggregate throughput
// across all producers and shards, and each row beyond the first core count
// reports its speedup over the same shard/mode row at the first core count.
// Each core count appends its own record to the -json trajectory (the
// config's gomaxprocs field keys them). "-shards auto" resolves to the
// monitor's autotuner (one shard per schedulable core at each -procs step).
//
// With -remote ADDR monitorbench becomes a load generator for a running
// driftserver: the shard sweep is skipped (sharding is the server's
// business) and the workload is driven over the wire with IngestBatch
// (-batch > 0) or per-observation Ingest. The run ends with a
// FlushCheckpoints barrier and verifies through the wire snapshot that the
// server processed every observation sent — a non-zero exit otherwise,
// which is what the CI smoke asserts. JSON rows embed the server's
// canonical snapshot encoding.
//
// The remote saturation knobs:
//
//   - -clients N overrides -producers as the number of load goroutines;
//   - -inflight W opens a pipelined in-flight window of W requests per
//     connection (1 = the serial stop-and-wait client, the default);
//   - -conns K > 0 multiplexes all clients over a ClientPool of K pipelined
//     connections with consistent-hash stream affinity (0 = one private
//     connection per client, the historical shape);
//   - -churn S runs S subscriber churners that connect, drain a few drift
//     events, and disconnect in a loop for the whole run — the
//     slow-subscriber/eviction path exercised while the ingest path is
//     saturated.
//
// Sweeping -clients x -inflight is the saturation experiment in
// EXPERIMENTS.md: obs/s as a function of offered concurrency and window
// depth.
//
// The degraded-network knobs: -retry dials every sender with the default
// retry policy (reconnect with backoff, busy retries, stall watchdog), and
// any non-zero -chaos* flag interposes the internal/chaos fault proxy
// between the senders and the server — -chaosreset N hard-resets each
// connection after ~N frames, -chaosdelay adds a per-frame forwarding
// delay, -chaosdup and -chaosdrop duplicate/drop frames with the given
// probability, -chaosseed fixes the fault schedule. A chaos run forces the
// retry policy on, prints the proxy's injection tally alongside the
// client's reconnect count and the server's dedup/shed deltas, and still
// enforces the exact-conservation exit check — plus, under -chaosreset, a
// ≥ 1 reconnect check so the resilience claim is never vacuously green.
// The control connection (snapshots, flush barrier) bypasses the proxy.
//
// With -cluster ADDR1,ADDR2,... monitorbench drives a driftserver fleet
// through the consistent-hash cluster client (rbmim.DialCluster): streams
// route to members by the ring, -conns/-inflight shape each member's pool,
// and the run ends with a fleet-wide flush barrier and an exact
// conservation check against the merged snapshot. With -migrate M the run
// pauses halfway and live-migrates M streams to their next ring neighbor
// via checkpoint handoff, then finishes the second half of the workload on
// the new placement — the merged counters must still account for every
// observation, and every migrated stream must have rehydrated on its
// target. The chaos and churn knobs are single-server-mode only and are
// rejected with -cluster.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rbmim"
	"rbmim/internal/chaos"
	"rbmim/internal/synth"
)

func main() {
	streams := flag.Int("streams", 256, "independent streams to multiplex")
	instances := flag.Int("instances", 4000, "observations per stream")
	features := flag.Int("features", 20, "features per stream")
	classes := flag.Int("classes", 5, "classes per stream")
	shardList := flag.String("shards", "", "comma-separated shard counts to sweep (default 1,2,4,...,NumCPU)")
	producers := flag.Int("producers", 0, "producer goroutines (default NumCPU)")
	drift := flag.Bool("drift", false, "inject a sudden drift halfway through every stream")
	queue := flag.Int("queue", 4096, "per-shard queue capacity in observations (envelopes for batch mode are sized accordingly)")
	batch := flag.Int("batch", 0, "IngestBatch block size; > 0 additionally sweeps the batched path against per-instance Ingest")
	jsonPath := flag.String("json", "", "append this run's rows to the given JSON trajectory file")
	checkpoint := flag.String("checkpoint", "", `enable checkpointing: "mem" or a directory for a filesystem store`)
	ckptInt := flag.Duration("ckptint", 500*time.Millisecond, "periodic snapshot cadence when -checkpoint is set")
	remote := flag.String("remote", "", "drive a running driftserver at this address instead of an in-process monitor")
	clients := flag.Int("clients", 0, "remote mode: load goroutines (overrides -producers; 0 = use -producers)")
	conns := flag.Int("conns", 0, "remote mode: multiplex all clients over a pool of this many pipelined connections (0 = one connection per client)")
	inflight := flag.Int("inflight", 1, "remote mode: pipelined in-flight requests per connection (1 = serial)")
	churn := flag.Int("churn", 0, "remote mode: subscriber churners connecting/draining/disconnecting for the whole run")
	retry := flag.Bool("retry", false, "remote mode: dial with the default retry policy (reconnect, backoff, busy retries)")
	chaosReset := flag.Int("chaosreset", 0, "remote mode: fault proxy hard-resets each connection after ~this many frames (0 disables)")
	chaosDelay := flag.Duration("chaosdelay", 0, "remote mode: fault-proxy per-frame forwarding delay")
	chaosDup := flag.Float64("chaosdup", 0, "remote mode: fault-proxy frame duplication probability")
	chaosDrop := flag.Float64("chaosdrop", 0, "remote mode: fault-proxy frame drop probability")
	chaosSeed := flag.Int64("chaosseed", 1, "remote mode: fault-proxy schedule seed")
	cluster := flag.String("cluster", "", "drive a driftserver fleet at these comma-separated addresses via the consistent-hash cluster client")
	migrateN := flag.Int("migrate", 0, "cluster mode: live-migrate this many streams to their next ring neighbor halfway through the run")
	procsList := flag.String("procs", "", "comma-separated GOMAXPROCS values to sweep (multi-core scaling mode; default: current setting only)")
	flag.Parse()

	shardCounts := parseShards(*shardList)
	procs := parseProcs(*procsList)
	if *producers <= 0 {
		*producers = runtime.NumCPU()
	}

	fmt.Printf("monitorbench: %d streams x %d instances, %d features, %d classes, %d producers (GOMAXPROCS sweep %v)\n\n",
		*streams, *instances, *features, *classes, *producers, procs)

	// Pre-draw every stream's observations so the sweep measures the monitor,
	// not the generators.
	workload, err := buildWorkload(*streams, *instances, *features, *classes, *drift)
	if err != nil {
		fail(err)
	}

	if *cluster != "" {
		opts := remoteOpts{
			clients: *clients, conns: *conns, inflight: *inflight,
			batch: *batch, retry: *retry,
			chaosReset: *chaosReset, chaosDelay: *chaosDelay,
			chaosDup: *chaosDup, chaosDrop: *chaosDrop,
		}
		if opts.chaosEnabled() || *churn > 0 {
			fail(fmt.Errorf("-chaos* and -churn are single-server knobs; they cannot be combined with -cluster"))
		}
		if opts.clients <= 0 {
			opts.clients = *producers
		}
		if opts.inflight < 1 {
			opts.inflight = 1
		}
		addrs := splitAddrs(*cluster)
		runClusterMode(workload, opts, addrs, *migrateN, *jsonPath, runConfig{
			Streams: *streams, Instances: *instances, Features: *features,
			Classes: *classes, Producers: opts.clients, Drift: *drift,
			GOMAXPROCS: runtime.GOMAXPROCS(0), Cluster: *cluster,
			Conns: opts.conns, Inflight: opts.inflight,
			Retry: opts.retry, Migrate: *migrateN,
		})
		return
	}

	if *remote != "" {
		opts := remoteOpts{
			clients: *clients, conns: *conns, inflight: *inflight,
			batch: *batch, churn: *churn, addr: *remote, retry: *retry,
			chaosReset: *chaosReset, chaosDelay: *chaosDelay,
			chaosDup: *chaosDup, chaosDrop: *chaosDrop, chaosSeed: *chaosSeed,
		}
		if opts.clients <= 0 {
			opts.clients = *producers
		}
		if opts.inflight < 1 {
			opts.inflight = 1
		}
		runRemoteMode(workload, opts, *jsonPath, runConfig{
			Streams: *streams, Instances: *instances, Features: *features,
			Classes: *classes, Producers: opts.clients, Drift: *drift,
			GOMAXPROCS: runtime.GOMAXPROCS(0), Remote: *remote,
			Conns: opts.conns, Inflight: opts.inflight, Churn: opts.churn,
			Retry: opts.retry || opts.chaosEnabled(), ChaosReset: opts.chaosReset,
			ChaosDelayMS: float64(opts.chaosDelay.Microseconds()) / 1000,
			ChaosDup:     opts.chaosDup, ChaosDrop: opts.chaosDrop,
		})
		return
	}

	modes := []int{0}
	if *batch > 0 {
		modes = []int{0, *batch}
	}
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	// coreBase remembers the aggregate rate of each shard/mode row at the
	// first core count, so later core counts print their scaling factor.
	type rowKey struct{ shards, batch int }
	coreBase := map[rowKey]float64{}
	for pi, p := range procs {
		runtime.GOMAXPROCS(p)
		if len(procs) > 1 {
			fmt.Printf("--- GOMAXPROCS=%d ---\n", p)
		}
		fmt.Printf("%-8s %-10s %-14s %-12s %-10s %-10s %s\n", "shards", "mode", "instances/s", "wall", "drifts", "streams", "shard balance (ingested)")
		var rows []runRow
		base := map[int]float64{} // per-instance rate per shard count
		var firstRate float64
		for _, shardSel := range shardCounts {
			shards := shardSel
			if shards == 0 { // "auto": one shard per schedulable core
				shards = p
			}
			for _, b := range modes {
				res, err := runSweep(workload, *features, *classes, shards, *producers, *queue, b, *checkpoint, *ckptInt)
				if err != nil {
					fail(err)
				}
				mode := "single"
				note := ""
				if b > 0 {
					mode = fmt.Sprintf("batch%d", b)
					if s := base[shards]; s > 0 {
						note = fmt.Sprintf("  (%.2fx vs single)", res.rate/s)
					}
				} else {
					base[shards] = res.rate
					if firstRate == 0 {
						firstRate = res.rate
					} else {
						note = fmt.Sprintf("  (%.2fx vs 1 shard)", res.rate/firstRate)
					}
				}
				k := rowKey{shardSel, b}
				if pi == 0 {
					coreBase[k] = res.rate
				} else if s := coreBase[k]; s > 0 {
					note += fmt.Sprintf("  (%.2fx vs %d cores)", res.rate/s, procs[0])
				}
				fmt.Printf("%-8d %-10s %-14s %-12s %-10d %-10d %s%s\n",
					shards, mode, fmt.Sprintf("%.0f", res.rate), res.wall.Round(time.Millisecond),
					res.drifts, res.streams, res.balance, note)
				sn := res.sn
				rows = append(rows, runRow{
					Shards: shards, Batch: b, InstancesPerSec: res.rate,
					WallMS: float64(res.wall.Microseconds()) / 1000,
					Drifts: res.drifts, Streams: res.streams, Snapshot: &sn,
				})
			}
		}
		if *jsonPath != "" {
			rec := runRecord{
				Generated: time.Now().UTC().Format(time.RFC3339),
				Config: runConfig{
					Streams: *streams, Instances: *instances, Features: *features,
					Classes: *classes, Producers: *producers, Queue: *queue,
					Drift: *drift, GOMAXPROCS: p,
					Checkpoint: *checkpoint,
				},
				Rows: rows,
			}
			if err := appendRecord(*jsonPath, rec); err != nil {
				fail(err)
			}
			fmt.Printf("\nappended run record to %s\n", *jsonPath)
		}
		if len(procs) > 1 {
			fmt.Println()
		}
	}
}

// runRecord is one monitorbench invocation in the JSON trajectory file.
type runRecord struct {
	Generated string    `json:"generated"`
	Config    runConfig `json:"config"`
	Rows      []runRow  `json:"rows"`
}

type runConfig struct {
	Streams    int  `json:"streams"`
	Instances  int  `json:"instances"`
	Features   int  `json:"features"`
	Classes    int  `json:"classes"`
	Producers  int  `json:"producers"`
	Queue      int  `json:"queue"`
	Drift      bool `json:"drift"`
	GOMAXPROCS int  `json:"gomaxprocs"`
	// Checkpoint records the -checkpoint mode of the run ("" = disabled) so
	// trajectory rows with and without state persistence stay comparable.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Remote records the driftserver address of a -remote loadgen run
	// ("" = in-process monitor).
	Remote string `json:"remote,omitempty"`
	// Cluster records the comma-separated fleet addresses of a -cluster run,
	// and Migrate how many streams were live-migrated mid-run.
	Cluster string `json:"cluster,omitempty"`
	Migrate int    `json:"migrate,omitempty"`
	// Conns/Inflight/Churn record the remote saturation knobs: pooled
	// connections (0 = one per client), in-flight window per connection,
	// and subscriber churners running alongside the load.
	Conns    int `json:"conns,omitempty"`
	Inflight int `json:"inflight,omitempty"`
	Churn    int `json:"churn,omitempty"`
	// Retry and the Chaos* fields record degraded-network runs: the client's
	// retry policy and the fault-proxy schedule (see internal/chaos), so
	// clean and degraded rows in the trajectory stay distinguishable.
	Retry        bool    `json:"retry,omitempty"`
	ChaosReset   int     `json:"chaos_reset,omitempty"`
	ChaosDelayMS float64 `json:"chaos_delay_ms,omitempty"`
	ChaosDup     float64 `json:"chaos_dup,omitempty"`
	ChaosDrop    float64 `json:"chaos_drop,omitempty"`
}

type runRow struct {
	Shards          int     `json:"shards"`
	Batch           int     `json:"batch"` // 0 = per-instance Ingest
	InstancesPerSec float64 `json:"instances_per_sec"`
	WallMS          float64 `json:"wall_ms"`
	Drifts          uint64  `json:"drifts"`
	Streams         int     `json:"streams"`
	// Client-observed ingest latency quantiles in milliseconds (submit to
	// reply matched, merged across the run's connections); present on
	// -remote and -cluster rows.
	IngestP50MS float64 `json:"ingest_p50_ms,omitempty"`
	IngestP95MS float64 `json:"ingest_p95_ms,omitempty"`
	IngestP99MS float64 `json:"ingest_p99_ms,omitempty"`
	// Snapshot is the monitor's end-of-run state in the canonical
	// stable-field-order encoding (monitor.Snapshot.MarshalJSON) — the same
	// bytes the server's Snapshot reply and /metrics pipeline carry.
	Snapshot *rbmim.MonitorSnapshot `json:"snapshot,omitempty"`
}

// appendRecord appends rec to the JSON array at path (creating it when
// missing), keeping the file a growing benchmark trajectory.
func appendRecord(path string, rec runRecord) error {
	var records []runRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("existing %s is not a run-record array: %w", path, err)
		}
	}
	records = append(records, rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

type workloadStream struct {
	id  string
	obs []rbmim.Observation
}

type sweepResult struct {
	rate    float64
	wall    time.Duration
	drifts  uint64
	streams int
	balance string
	sn      rbmim.MonitorSnapshot
}

// remoteOpts bundles the -remote saturation knobs.
type remoteOpts struct {
	clients  int // load goroutines
	conns    int // pooled connections; 0 = one private connection per client
	inflight int // in-flight window per connection; 1 = serial
	batch    int
	churn    int // subscriber churners
	addr     string
	retry    bool // dial with the default retry policy

	// The -chaos* fault-proxy knobs; any non-zero fault interposes the
	// proxy and forces the retry policy on (a faulted run without retries
	// just fails).
	chaosReset int
	chaosDelay time.Duration
	chaosDup   float64
	chaosDrop  float64
	chaosSeed  int64
}

func (o remoteOpts) chaosEnabled() bool {
	return o.chaosReset > 0 || o.chaosDelay > 0 || o.chaosDup > 0 || o.chaosDrop > 0
}

// runRemoteMode is the -remote loadgen path: it drives a running
// driftserver over loopback/network, prints one result row, optionally
// appends it to the JSON trajectory, and fails the process when the
// server-side counters do not account for every observation sent.
func runRemoteMode(workload []workloadStream, opts remoteOpts, jsonPath string, cfg runConfig) {
	res, err := runRemote(workload, opts)
	if err != nil {
		fail(err)
	}
	mode := "single"
	if opts.batch > 0 {
		mode = fmt.Sprintf("batch%d", opts.batch)
	}
	wire := fmt.Sprintf("clients=%d conns=%d inflight=%d churn=%d", opts.clients, opts.conns, opts.inflight, opts.churn)
	fmt.Printf("%-8s %-10s %-14s %-12s %-10s %-10s %s\n", "shards", "mode", "instances/s", "wall", "drifts", "streams", "shard balance (ingested)")
	fmt.Printf("%-8d %-10s %-14s %-12s %-10d %-10d %s  [%s]\n",
		res.sn.Shards, mode, fmt.Sprintf("%.0f", res.rate), res.wall.Round(time.Millisecond),
		res.drifts, res.streams, res.balance, wire)
	p50, p95, p99, haveLat := ingestLatency(res.latency)
	if haveLat {
		fmt.Printf("ingest latency (client-observed rtt): p50=%.3fms p95=%.3fms p99=%.3fms\n", p50, p95, p99)
	}
	if res.faults != nil {
		f := res.faults
		fmt.Printf("chaos: conns=%d frames=%d dropped=%d duplicated=%d resets=%d blackholed=%d  reconnects=%d dedup_hits=%d shedded=%d\n",
			f.Conns, f.Frames, f.Dropped, f.Duplicated, f.Resets, f.Blackholed,
			res.reconnects, res.dedupHits, res.shedded)
	}
	if jsonPath != "" {
		rec := runRecord{
			Generated: time.Now().UTC().Format(time.RFC3339),
			Config:    cfg,
			Rows: []runRow{{
				Shards: res.sn.Shards, Batch: opts.batch, InstancesPerSec: res.rate,
				WallMS: float64(res.wall.Microseconds()) / 1000,
				Drifts: res.drifts, Streams: res.streams,
				IngestP50MS: p50, IngestP95MS: p95, IngestP99MS: p99,
				Snapshot: &res.sn,
			}},
		}
		if err := appendRecord(jsonPath, rec); err != nil {
			fail(err)
		}
		fmt.Printf("\nappended run record to %s\n", jsonPath)
	}
	// The smoke assertion: the server must have processed exactly what was
	// sent (IngestBatch blocks, so nothing may be dropped).
	want := uint64(0)
	for _, ws := range workload {
		want += uint64(len(ws.obs))
	}
	if got := res.sn.Ingested - res.before; got != want {
		fail(fmt.Errorf("server ingested %d observations, sent %d", got, want))
	}
	// With -chaosreset the run must actually have exercised the reconnect
	// path — a zero count means the proxy never fired and the "survived a
	// degraded network" claim is vacuous.
	if opts.chaosReset > 0 && res.reconnects == 0 {
		fail(fmt.Errorf("chaos run with -chaosreset %d recorded zero reconnects", opts.chaosReset))
	}
}

// splitAddrs expands the -cluster flag into its member addresses.
func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	if len(out) == 0 {
		fail(fmt.Errorf("-cluster needs at least one address"))
	}
	return out
}

// runClusterMode is the -cluster loadgen path: it drives a driftserver
// fleet through the consistent-hash cluster client, optionally live-
// migrating streams mid-run, prints one result row with the per-member
// balance, and fails the process unless the merged fleet counters account
// for every observation sent — and, with -migrate, unless every migrated
// stream actually rehydrated on its target.
func runClusterMode(workload []workloadStream, opts remoteOpts, addrs []string, migrate int, jsonPath string, cfg runConfig) {
	res, err := runCluster(workload, opts, addrs, migrate)
	if err != nil {
		fail(err)
	}
	mode := "single"
	if opts.batch > 0 {
		mode = fmt.Sprintf("batch%d", opts.batch)
	}
	wire := fmt.Sprintf("members=%d clients=%d conns=%d inflight=%d migrated=%d", len(addrs), opts.clients, opts.conns, opts.inflight, res.migrated)
	fmt.Printf("%-8s %-10s %-14s %-12s %-10s %-10s %s\n", "shards", "mode", "instances/s", "wall", "drifts", "streams", "member balance (ingested)")
	fmt.Printf("%-8d %-10s %-14s %-12s %-10d %-10d %s  [%s]\n",
		res.sn.Shards, mode, fmt.Sprintf("%.0f", res.rate), res.wall.Round(time.Millisecond),
		res.drifts, res.streams, res.balance, wire)
	p50, p95, p99, haveLat := ingestLatency(res.latency)
	if haveLat {
		fmt.Printf("ingest latency (client-observed rtt): p50=%.3fms p95=%.3fms p99=%.3fms\n", p50, p95, p99)
	}
	if jsonPath != "" {
		rec := runRecord{
			Generated: time.Now().UTC().Format(time.RFC3339),
			Config:    cfg,
			Rows: []runRow{{
				Shards: res.sn.Shards, Batch: opts.batch, InstancesPerSec: res.rate,
				WallMS: float64(res.wall.Microseconds()) / 1000,
				Drifts: res.drifts, Streams: res.streams,
				IngestP50MS: p50, IngestP95MS: p95, IngestP99MS: p99,
				Snapshot: &res.sn,
			}},
		}
		if err := appendRecord(jsonPath, rec); err != nil {
			fail(err)
		}
		fmt.Printf("\nappended run record to %s\n", jsonPath)
	}
	// Fleet-wide conservation: the merged counters must account for every
	// observation sent, regardless of which member each stream (or half of
	// its life, when migrated) landed on.
	want := uint64(0)
	for _, ws := range workload {
		want += uint64(len(ws.obs))
	}
	if got := res.sn.Ingested - res.before; got != want {
		fail(fmt.Errorf("cluster ingested %d observations, sent %d", got, want))
	}
	// Every handoff installs via the rehydration path on its target, so a
	// migrating run must show at least as many rehydrations as migrations —
	// otherwise the handoff silently degenerated to fresh detectors.
	if migrate > 0 && res.rehydrated < res.migrated {
		fail(fmt.Errorf("migrated %d streams but the fleet rehydrated only %d", res.migrated, res.rehydrated))
	}
}

// runCluster replays the workload against the fleet. With migrate > 0 the
// run is two-phase: the first half of every stream, then migrate streams
// hop to their next ring neighbor via checkpoint handoff, then the second
// half lands on the new placement.
func runCluster(workload []workloadStream, opts remoteOpts, addrs []string, migrate int) (clusterResult, error) {
	policy := rbmim.RetryPolicy{}
	if opts.retry {
		policy = rbmim.DefaultRetryPolicy()
		policy.BackoffBase = 5 * time.Millisecond
		policy.StallTimeout = time.Second
	}
	cc, err := rbmim.DialCluster(rbmim.ClusterConfig{
		Addrs: addrs, Conns: opts.conns, Window: opts.inflight, Policy: policy,
	})
	if err != nil {
		return clusterResult{}, err
	}
	defer cc.Close()
	// Per-member pre-run snapshots keep both the merged deltas and the
	// balance column correct against a long-lived fleet.
	beforeMembers, err := cc.MemberSnapshots()
	if err != nil {
		return clusterResult{}, err
	}
	beforeByAddr := map[string]rbmim.MonitorSnapshot{}
	merged := make([]rbmim.MonitorSnapshot, 0, len(beforeMembers))
	for _, m := range beforeMembers {
		beforeByAddr[m.Addr] = m.Snapshot
		merged = append(merged, m.Snapshot)
	}
	before := rbmim.MergeSnapshots(merged...)

	// sendRange replays obs[lo:hi) of every stream, clients feeding disjoint
	// stream subsets through the shared cluster client (the per-member pools
	// do the multiplexing), with the same pipelined async ring as -remote.
	sendRange := func(frac2 bool) error {
		var wg sync.WaitGroup
		errs := make(chan error, opts.clients)
		for p := 0; p < opts.clients; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				ring := make([]rbmim.ClientPending, opts.inflight)
				n := 0
				send := func(id string, block []rbmim.Observation) error {
					if opts.inflight <= 1 {
						if opts.batch > 0 {
							return cc.IngestBatch(id, block)
						}
						return cc.Ingest(id, block[0])
					}
					if n >= len(ring) {
						if err := ring[n%len(ring)].Wait(); err != nil {
							return err
						}
					}
					var pd rbmim.ClientPending
					var err error
					if opts.batch > 0 {
						pd, err = cc.IngestBatchAsync(id, block)
					} else {
						pd, err = cc.IngestAsync(id, block[0])
					}
					if err != nil {
						return err
					}
					ring[n%len(ring)] = pd
					n++
					return nil
				}
				step := opts.batch
				if step <= 0 {
					step = 1
				}
				for s := p; s < len(workload); s += opts.clients {
					ws := workload[s]
					lo, hi := 0, len(ws.obs)/2
					if frac2 {
						lo, hi = len(ws.obs)/2, len(ws.obs)
					}
					for i := lo; i < hi; i += step {
						end := i + step
						if end > hi {
							end = hi
						}
						if err := send(ws.id, ws.obs[i:end]); err != nil {
							errs <- err
							return
						}
					}
				}
				for i := 0; i < n && i < len(ring); i++ {
					if err := ring[i].Wait(); err != nil {
						errs <- err
						return
					}
				}
			}(p)
		}
		wg.Wait()
		select {
		case err := <-errs:
			return err
		default:
			return nil
		}
	}

	start := time.Now()
	if err := sendRange(false); err != nil {
		return clusterResult{}, err
	}
	// Live migration between the halves: each chosen stream hops to the
	// member after its current owner in sorted order, concurrently with
	// nothing (the producers are joined) but with its first-half state
	// trained — the handoff carries it.
	members := cc.Members()
	migrated := uint64(0)
	for s := 0; s < migrate && s < len(workload); s++ {
		id := workload[s].id
		owner, err := cc.Owner(id)
		if err != nil {
			return clusterResult{}, err
		}
		next := members[0]
		for i, m := range members {
			if m == owner {
				next = members[(i+1)%len(members)]
				break
			}
		}
		if next == owner {
			continue // single-member fleet: nowhere to go
		}
		if err := cc.Migrate(id, next); err != nil {
			return clusterResult{}, fmt.Errorf("migrating %s to %s: %w", id, next, err)
		}
		migrated++
	}
	if err := sendRange(true); err != nil {
		return clusterResult{}, err
	}
	if err := cc.FlushCheckpoints(); err != nil {
		return clusterResult{}, err
	}
	wall := time.Since(start)

	after, err := cc.Snapshot()
	if err != nil {
		return clusterResult{}, err
	}
	perMember, err := cc.MemberSnapshots()
	if err != nil {
		return clusterResult{}, err
	}
	loads := make([]uint64, 0, len(perMember))
	for _, m := range perMember {
		loads = append(loads, m.Ingested-beforeByAddr[m.Addr].Ingested)
	}
	return clusterResult{
		sweepResult: sweepResult{
			rate:    float64(after.Ingested-before.Ingested) / wall.Seconds(),
			wall:    wall,
			drifts:  after.Drifts - before.Drifts,
			streams: after.Streams,
			balance: balanceString(loads),
			sn:      after,
		},
		before:     before.Ingested,
		migrated:   migrated,
		rehydrated: after.Rehydrated - before.Rehydrated,
		latency:    cc.Latency(),
	}, nil
}

// clusterResult is a sweepResult over the merged fleet snapshot, plus the
// migration tally the -migrate assertions need.
type clusterResult struct {
	sweepResult
	before     uint64
	migrated   uint64
	rehydrated uint64
	latency    []rbmim.TelemetryStage // client-observed rtt_* stages
}

// wireSender is the slice of the client API the load loop needs; both a
// private *rbmim.Client and a shared *rbmim.ClientPool implement it.
type wireSender interface {
	Ingest(string, rbmim.Observation) error
	IngestBatch(string, []rbmim.Observation) error
	IngestAsync(string, rbmim.Observation) (rbmim.ClientPending, error)
	IngestBatchAsync(string, []rbmim.Observation) (rbmim.ClientPending, error)
}

// ingestLatency folds the client-observed rtt_ingest* stages (single,
// batch, and try-batch ingests) into one p50/p95/p99 summary in
// milliseconds; ok is false when nothing was timed.
func ingestLatency(stages []rbmim.TelemetryStage) (p50, p95, p99 float64, ok bool) {
	var group []rbmim.TelemetryStage
	for _, st := range stages {
		if strings.HasPrefix(st.Stage, "rtt_ingest") || strings.HasPrefix(st.Stage, "rtt_try_ingest") {
			st.Stage = "ingest" // common name so the merge folds them together
			group = append(group, st)
		}
	}
	merged := rbmim.MergeTelemetryStages(group)
	if len(merged) == 0 || merged[0].Count == 0 {
		return 0, 0, 0, false
	}
	m := merged[0]
	return float64(m.P50NS) / 1e6, float64(m.P95NS) / 1e6, float64(m.P99NS) / 1e6, true
}

// runRemote replays the workload against a driftserver, clients feeding
// disjoint stream subsets — each over a private connection, or all
// multiplexed over a shared pool (opts.conns > 0). With opts.inflight > 1
// each client keeps a ring of async requests pipelined instead of idling a
// round trip per block. Deltas against the pre-run snapshot keep the
// numbers correct on a long-lived server.
func runRemote(workload []workloadStream, opts remoteOpts) (remoteResult, error) {
	// The control connection (snapshots, flush barrier, churner subscribes)
	// always dials the server directly: the proxy degrades the load path,
	// not the measurement.
	ctl, err := rbmim.Dial(opts.addr)
	if err != nil {
		return remoteResult{}, err
	}
	defer ctl.Close()
	before, err := ctl.Snapshot()
	if err != nil {
		return remoteResult{}, err
	}

	// With any -chaos* fault set, senders dial through an in-process fault
	// proxy and the retry policy is forced on (a degraded run without
	// retries just fails).
	sendAddr := opts.addr
	var px *chaos.Proxy
	if opts.chaosEnabled() {
		px, err = chaos.New(chaos.Config{
			Target:        opts.addr,
			Seed:          opts.chaosSeed,
			Delay:         opts.chaosDelay,
			DropRate:      opts.chaosDrop,
			DuplicateRate: opts.chaosDup,
			ResetEvery:    opts.chaosReset,
		})
		if err != nil {
			return remoteResult{}, err
		}
		defer px.Close()
		sendAddr = px.Addr()
	}
	policy := rbmim.RetryPolicy{}
	if opts.retry || px != nil {
		policy = rbmim.DefaultRetryPolicy()
		policy.BackoffBase = 5 * time.Millisecond
		policy.StallTimeout = time.Second
	}

	producers := opts.clients
	senders := make([]wireSender, producers)
	reconnects := func() uint64 { return 0 }
	latency := func() []rbmim.TelemetryStage { return nil }
	if opts.conns > 0 {
		pool, err := rbmim.DialPoolRetry(sendAddr, opts.conns, opts.inflight, policy)
		if err != nil {
			return remoteResult{}, err
		}
		defer pool.Close()
		for p := range senders {
			senders[p] = pool
		}
		reconnects = pool.Reconnects
		latency = pool.Latency
	} else {
		conns := make([]*rbmim.Client, producers)
		for p := range senders {
			c, err := rbmim.DialRetry(sendAddr, opts.inflight, policy)
			if err != nil {
				return remoteResult{}, err
			}
			defer c.Close()
			senders[p] = c
			conns[p] = c
		}
		reconnects = func() uint64 {
			var n uint64
			for _, c := range conns {
				n += c.Reconnects()
			}
			return n
		}
		latency = func() []rbmim.TelemetryStage {
			var groups [][]rbmim.TelemetryStage
			for _, c := range conns {
				if st := c.Latency(); len(st) > 0 {
					groups = append(groups, st)
				}
			}
			return rbmim.MergeTelemetryStages(groups...)
		}
	}

	// Subscriber churners: connect, drain a handful of events (or time out),
	// disconnect, repeat — the reconnect/eviction path exercised while the
	// ingest path is under load.
	churnDone := make(chan struct{})
	var churnWG sync.WaitGroup
	for s := 0; s < opts.churn; s++ {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for {
				select {
				case <-churnDone:
					return
				default:
				}
				sub, err := ctl.Subscribe(8)
				if err != nil {
					return // server shutting down; the load loop reports errors
				}
				timeout := time.After(5 * time.Millisecond)
			drain:
				for i := 0; i < 16; i++ {
					select {
					case _, ok := <-sub.Events():
						if !ok {
							break drain
						}
					case <-timeout:
						break drain
					case <-churnDone:
						break drain
					}
				}
				sub.Close()
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := senders[p]
			// ring bounds this client's outstanding async requests to the
			// in-flight window; zero-valued entries are skipped on drain.
			ring := make([]rbmim.ClientPending, opts.inflight)
			n := 0
			send := func(id string, block []rbmim.Observation) error {
				if opts.inflight <= 1 {
					if opts.batch > 0 {
						return c.IngestBatch(id, block)
					}
					return c.Ingest(id, block[0])
				}
				if n >= len(ring) {
					if err := ring[n%len(ring)].Wait(); err != nil {
						return err
					}
				}
				var pd rbmim.ClientPending
				var err error
				if opts.batch > 0 {
					pd, err = c.IngestBatchAsync(id, block)
				} else {
					pd, err = c.IngestAsync(id, block[0])
				}
				if err != nil {
					return err
				}
				ring[n%len(ring)] = pd
				n++
				return nil
			}
			step := opts.batch
			if step <= 0 {
				step = 1
			}
			for s := p; s < len(workload); s += producers {
				ws := workload[s]
				for i := 0; i < len(ws.obs); i += step {
					end := i + step
					if end > len(ws.obs) {
						end = len(ws.obs)
					}
					if err := send(ws.id, ws.obs[i:end]); err != nil {
						errs <- err
						return
					}
				}
			}
			for i := 0; i < n && i < len(ring); i++ {
				if err := ring[i].Wait(); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	select {
	case err := <-errs:
		close(churnDone)
		churnWG.Wait()
		return remoteResult{}, err
	default:
	}
	// Barrier: every acked observation is enqueued, so one monitor-wide
	// flush makes all of it applied (and checkpoints, if the server has a
	// store, durable) before the clock stops.
	if err := ctl.FlushCheckpoints(); err != nil {
		close(churnDone)
		churnWG.Wait()
		return remoteResult{}, err
	}
	wall := time.Since(start)
	close(churnDone)
	churnWG.Wait()
	after, err := ctl.Snapshot()
	if err != nil {
		return remoteResult{}, err
	}
	delta := after.Ingested - before.Ingested
	perShard := make([]uint64, len(after.ShardIngested))
	for i := range perShard {
		perShard[i] = after.ShardIngested[i]
		if i < len(before.ShardIngested) {
			perShard[i] -= before.ShardIngested[i]
		}
	}
	res := remoteResult{
		sweepResult: sweepResult{
			rate:    float64(delta) / wall.Seconds(),
			wall:    wall,
			drifts:  after.Drifts - before.Drifts,
			streams: after.Streams,
			balance: balanceString(perShard),
			sn:      after,
		},
		before:     before.Ingested,
		reconnects: reconnects(),
		dedupHits:  after.DedupHits - before.DedupHits,
		shedded:    after.Shedded - before.Shedded,
		latency:    latency(),
	}
	if px != nil {
		faults := px.Stats()
		res.faults = &faults
	}
	return res, nil
}

// remoteResult is a sweepResult plus the pre-run ingest counter, so the
// verification can compute the delta a long-lived server accumulates, and —
// on degraded runs — the client-side reconnect count, the server's
// dedup/shed deltas, and the fault proxy's injection tally.
type remoteResult struct {
	sweepResult
	before     uint64
	reconnects uint64
	dedupHits  uint64
	shedded    uint64
	faults     *chaos.Stats
	latency    []rbmim.TelemetryStage // client-observed rtt_* stages
}

// buildWorkload pre-generates every stream's observation sequence.
func buildWorkload(streams, instances, features, classes int, drift bool) ([]workloadStream, error) {
	out := make([]workloadStream, streams)
	for s := range out {
		cfg := synth.Config{Features: features, Classes: classes, Seed: int64(1000 + s)}
		var src rbmim.Stream
		src, err := synth.NewRBF(cfg, 3, 0.08)
		if err != nil {
			return nil, err
		}
		if drift {
			afterCfg := cfg
			afterCfg.Seed = cfg.Seed + 500000
			after, err := synth.NewRBF(afterCfg, 3, 0.08)
			if err != nil {
				return nil, err
			}
			src = rbmim.NewDriftStream(src, after, rbmim.SuddenDrift, instances/2, 0, cfg.Seed)
		}
		obs := make([]rbmim.Observation, instances)
		for i := range obs {
			in := src.Next()
			obs[i] = rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
		}
		out[s] = workloadStream{id: fmt.Sprintf("stream-%04d", s), obs: obs}
	}
	return out, nil
}

// runSweep replays the whole workload through a fresh monitor with the given
// shard count, producers feeding disjoint stream subsets. batch > 0 sends
// the workload in IngestBatch blocks of that size; the queue capacity is
// then scaled down so both modes bound the same number of in-flight
// observations.
func runSweep(workload []workloadStream, features, classes, shards, producers, queue, batch int, checkpoint string, ckptInt time.Duration) (sweepResult, error) {
	qs := queue
	if batch > 0 {
		if qs = queue / batch; qs < 1 {
			qs = 1
		}
	}
	// A fresh store per sweep — and a unique directory per sweep AND per
	// invocation: reusing one would let later sweeps (or later runs against
	// the same -checkpoint dir) rehydrate earlier trained detectors,
	// silently changing the measured workload.
	var ckpt rbmim.CheckpointConfig
	switch checkpoint {
	case "":
	case "mem":
		ckpt = rbmim.CheckpointConfig{Store: rbmim.NewMemStore(), Interval: ckptInt}
	default:
		if err := os.MkdirAll(checkpoint, 0o755); err != nil {
			return sweepResult{}, err
		}
		dir, err := os.MkdirTemp(checkpoint, fmt.Sprintf("shards%d-batch%d-", shards, batch))
		if err != nil {
			return sweepResult{}, err
		}
		store, err := rbmim.NewFSStore(dir)
		if err != nil {
			return sweepResult{}, err
		}
		ckpt = rbmim.CheckpointConfig{Store: store, Interval: ckptInt}
	}
	m, err := rbmim.NewMonitor(rbmim.MonitorConfig{
		Detector: rbmim.DetectorConfig{
			Features: features,
			Classes:  classes,
			Seed:     7,
		},
		Shards:     shards,
		QueueSize:  qs,
		Checkpoint: ckpt,
	})
	if err != nil {
		return sweepResult{}, err
	}
	// Drain events so slow consumers never distort the measurement.
	go func() {
		for range m.Events() {
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for s := p; s < len(workload); s += producers {
				ws := workload[s]
				if batch > 0 {
					for i := 0; i < len(ws.obs); i += batch {
						end := i + batch
						if end > len(ws.obs) {
							end = len(ws.obs)
						}
						if err := m.IngestBatch(ws.id, ws.obs[i:end]); err != nil {
							return
						}
					}
					continue
				}
				for i := range ws.obs {
					if err := m.Ingest(ws.id, ws.obs[i]); err != nil {
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	m.Close()
	wall := time.Since(start)

	sn := m.Snapshot()
	return sweepResult{
		rate:    float64(sn.Ingested) / wall.Seconds(),
		wall:    wall,
		drifts:  sn.Drifts,
		streams: sn.Streams,
		balance: balanceString(sn.ShardIngested),
		sn:      sn,
	}, nil
}

// balanceString compacts the per-shard ingest counts into min/median/max.
func balanceString(loads []uint64) string {
	if len(loads) == 0 {
		return "-"
	}
	sorted := append([]uint64(nil), loads...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return fmt.Sprintf("min=%d med=%d max=%d", sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1])
}

// parseShards expands the -shards flag, defaulting to powers of two up to
// NumCPU. The entry "auto" becomes the sentinel 0, resolved to the current
// GOMAXPROCS at sweep time (the monitor autotuner's choice).
func parseShards(s string) []int {
	if s == "" {
		var out []int
		for n := 1; n <= runtime.NumCPU(); n *= 2 {
			out = append(out, n)
		}
		if last := out[len(out)-1]; last != runtime.NumCPU() {
			out = append(out, runtime.NumCPU())
		}
		return out
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "auto" {
			out = append(out, 0)
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			fail(fmt.Errorf("bad -shards entry %q", part))
		}
		out = append(out, n)
	}
	return out
}

// parseProcs expands the -procs flag into the GOMAXPROCS sweep; empty means
// a single pass at the current setting.
func parseProcs(s string) []int {
	if s == "" {
		return []int{runtime.GOMAXPROCS(0)}
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fail(fmt.Errorf("bad -procs entry %q", part))
		}
		out = append(out, n)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "monitorbench:", err)
	os.Exit(1)
}
