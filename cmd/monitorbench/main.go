// Command monitorbench stress-tests the sharded multi-stream Monitor: it
// fans a population of independent RBF streams (each with its own drift
// schedule) across the monitor's shards from several producer goroutines,
// then reports per-shard balance, throughput, and drift-event counts for
// each shard count in the sweep. The throughput table demonstrates shard
// scaling — per-stream detectors are independent, so ingestion parallelizes
// until the producers or the memory bus saturate.
//
// Usage:
//
//	monitorbench [-streams 256] [-instances 4000] [-features 20] [-classes 5]
//	             [-shards 1,2,4,8] [-producers 0] [-drift]
//	             [-batch 256] [-json BENCH_monitor.json]
//	             [-checkpoint mem|DIR] [-ckptint 500ms]
//
// With -drift every stream undergoes a sudden concept change halfway
// through, so the drift-event column should be non-zero for most streams.
// With -batch N > 0 every shard count is swept twice — per-instance Ingest
// and N-observation IngestBatch — and each batched row reports its speedup
// over the per-instance row. With -json the run is appended as one record
// to the given trajectory file (an array of runs, one per invocation).
// With -checkpoint the monitor persists every stream's detector state on the
// -ckptint cadence ("mem" = in-memory store, anything else = filesystem
// store rooted at that directory, one fresh subdirectory per sweep), so the
// throughput table shows what checkpointing costs the ingest path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rbmim"
	"rbmim/internal/synth"
)

func main() {
	streams := flag.Int("streams", 256, "independent streams to multiplex")
	instances := flag.Int("instances", 4000, "observations per stream")
	features := flag.Int("features", 20, "features per stream")
	classes := flag.Int("classes", 5, "classes per stream")
	shardList := flag.String("shards", "", "comma-separated shard counts to sweep (default 1,2,4,...,NumCPU)")
	producers := flag.Int("producers", 0, "producer goroutines (default NumCPU)")
	drift := flag.Bool("drift", false, "inject a sudden drift halfway through every stream")
	queue := flag.Int("queue", 4096, "per-shard queue capacity in observations (envelopes for batch mode are sized accordingly)")
	batch := flag.Int("batch", 0, "IngestBatch block size; > 0 additionally sweeps the batched path against per-instance Ingest")
	jsonPath := flag.String("json", "", "append this run's rows to the given JSON trajectory file")
	checkpoint := flag.String("checkpoint", "", `enable checkpointing: "mem" or a directory for a filesystem store`)
	ckptInt := flag.Duration("ckptint", 500*time.Millisecond, "periodic snapshot cadence when -checkpoint is set")
	flag.Parse()

	shardCounts := parseShards(*shardList)
	if *producers <= 0 {
		*producers = runtime.NumCPU()
	}

	fmt.Printf("monitorbench: %d streams x %d instances, %d features, %d classes, %d producers (GOMAXPROCS=%d)\n\n",
		*streams, *instances, *features, *classes, *producers, runtime.GOMAXPROCS(0))

	// Pre-draw every stream's observations so the sweep measures the monitor,
	// not the generators.
	workload, err := buildWorkload(*streams, *instances, *features, *classes, *drift)
	if err != nil {
		fail(err)
	}

	modes := []int{0}
	if *batch > 0 {
		modes = []int{0, *batch}
	}
	fmt.Printf("%-8s %-10s %-14s %-12s %-10s %-10s %s\n", "shards", "mode", "instances/s", "wall", "drifts", "streams", "shard balance (ingested)")
	var rows []runRow
	base := map[int]float64{} // per-instance rate per shard count
	var firstRate float64
	for _, shards := range shardCounts {
		for _, b := range modes {
			res, err := runSweep(workload, *features, *classes, shards, *producers, *queue, b, *checkpoint, *ckptInt)
			if err != nil {
				fail(err)
			}
			mode := "single"
			note := ""
			if b > 0 {
				mode = fmt.Sprintf("batch%d", b)
				if s := base[shards]; s > 0 {
					note = fmt.Sprintf("  (%.2fx vs single)", res.rate/s)
				}
			} else {
				base[shards] = res.rate
				if firstRate == 0 {
					firstRate = res.rate
				} else {
					note = fmt.Sprintf("  (%.2fx vs 1 shard)", res.rate/firstRate)
				}
			}
			fmt.Printf("%-8d %-10s %-14s %-12s %-10d %-10d %s%s\n",
				shards, mode, fmt.Sprintf("%.0f", res.rate), res.wall.Round(time.Millisecond),
				res.drifts, res.streams, res.balance, note)
			rows = append(rows, runRow{
				Shards: shards, Batch: b, InstancesPerSec: res.rate,
				WallMS: float64(res.wall.Microseconds()) / 1000,
				Drifts: res.drifts, Streams: res.streams,
			})
		}
	}
	if *jsonPath != "" {
		rec := runRecord{
			Generated: time.Now().UTC().Format(time.RFC3339),
			Config: runConfig{
				Streams: *streams, Instances: *instances, Features: *features,
				Classes: *classes, Producers: *producers, Queue: *queue,
				Drift: *drift, GOMAXPROCS: runtime.GOMAXPROCS(0),
				Checkpoint: *checkpoint,
			},
			Rows: rows,
		}
		if err := appendRecord(*jsonPath, rec); err != nil {
			fail(err)
		}
		fmt.Printf("\nappended run record to %s\n", *jsonPath)
	}
}

// runRecord is one monitorbench invocation in the JSON trajectory file.
type runRecord struct {
	Generated string    `json:"generated"`
	Config    runConfig `json:"config"`
	Rows      []runRow  `json:"rows"`
}

type runConfig struct {
	Streams    int  `json:"streams"`
	Instances  int  `json:"instances"`
	Features   int  `json:"features"`
	Classes    int  `json:"classes"`
	Producers  int  `json:"producers"`
	Queue      int  `json:"queue"`
	Drift      bool `json:"drift"`
	GOMAXPROCS int  `json:"gomaxprocs"`
	// Checkpoint records the -checkpoint mode of the run ("" = disabled) so
	// trajectory rows with and without state persistence stay comparable.
	Checkpoint string `json:"checkpoint,omitempty"`
}

type runRow struct {
	Shards          int     `json:"shards"`
	Batch           int     `json:"batch"` // 0 = per-instance Ingest
	InstancesPerSec float64 `json:"instances_per_sec"`
	WallMS          float64 `json:"wall_ms"`
	Drifts          uint64  `json:"drifts"`
	Streams         int     `json:"streams"`
}

// appendRecord appends rec to the JSON array at path (creating it when
// missing), keeping the file a growing benchmark trajectory.
func appendRecord(path string, rec runRecord) error {
	var records []runRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("existing %s is not a run-record array: %w", path, err)
		}
	}
	records = append(records, rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

type workloadStream struct {
	id  string
	obs []rbmim.Observation
}

type sweepResult struct {
	rate    float64
	wall    time.Duration
	drifts  uint64
	streams int
	balance string
}

// buildWorkload pre-generates every stream's observation sequence.
func buildWorkload(streams, instances, features, classes int, drift bool) ([]workloadStream, error) {
	out := make([]workloadStream, streams)
	for s := range out {
		cfg := synth.Config{Features: features, Classes: classes, Seed: int64(1000 + s)}
		var src rbmim.Stream
		src, err := synth.NewRBF(cfg, 3, 0.08)
		if err != nil {
			return nil, err
		}
		if drift {
			afterCfg := cfg
			afterCfg.Seed = cfg.Seed + 500000
			after, err := synth.NewRBF(afterCfg, 3, 0.08)
			if err != nil {
				return nil, err
			}
			src = rbmim.NewDriftStream(src, after, rbmim.SuddenDrift, instances/2, 0, cfg.Seed)
		}
		obs := make([]rbmim.Observation, instances)
		for i := range obs {
			in := src.Next()
			obs[i] = rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
		}
		out[s] = workloadStream{id: fmt.Sprintf("stream-%04d", s), obs: obs}
	}
	return out, nil
}

// runSweep replays the whole workload through a fresh monitor with the given
// shard count, producers feeding disjoint stream subsets. batch > 0 sends
// the workload in IngestBatch blocks of that size; the queue capacity is
// then scaled down so both modes bound the same number of in-flight
// observations.
func runSweep(workload []workloadStream, features, classes, shards, producers, queue, batch int, checkpoint string, ckptInt time.Duration) (sweepResult, error) {
	qs := queue
	if batch > 0 {
		if qs = queue / batch; qs < 1 {
			qs = 1
		}
	}
	// A fresh store per sweep — and a unique directory per sweep AND per
	// invocation: reusing one would let later sweeps (or later runs against
	// the same -checkpoint dir) rehydrate earlier trained detectors,
	// silently changing the measured workload.
	var ckpt rbmim.CheckpointConfig
	switch checkpoint {
	case "":
	case "mem":
		ckpt = rbmim.CheckpointConfig{Store: rbmim.NewMemStore(), Interval: ckptInt}
	default:
		if err := os.MkdirAll(checkpoint, 0o755); err != nil {
			return sweepResult{}, err
		}
		dir, err := os.MkdirTemp(checkpoint, fmt.Sprintf("shards%d-batch%d-", shards, batch))
		if err != nil {
			return sweepResult{}, err
		}
		store, err := rbmim.NewFSStore(dir)
		if err != nil {
			return sweepResult{}, err
		}
		ckpt = rbmim.CheckpointConfig{Store: store, Interval: ckptInt}
	}
	m, err := rbmim.NewMonitor(rbmim.MonitorConfig{
		Detector: rbmim.DetectorConfig{
			Features: features,
			Classes:  classes,
			Seed:     7,
		},
		Shards:     shards,
		QueueSize:  qs,
		Checkpoint: ckpt,
	})
	if err != nil {
		return sweepResult{}, err
	}
	// Drain events so slow consumers never distort the measurement.
	go func() {
		for range m.Events() {
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for s := p; s < len(workload); s += producers {
				ws := workload[s]
				if batch > 0 {
					for i := 0; i < len(ws.obs); i += batch {
						end := i + batch
						if end > len(ws.obs) {
							end = len(ws.obs)
						}
						if err := m.IngestBatch(ws.id, ws.obs[i:end]); err != nil {
							return
						}
					}
					continue
				}
				for i := range ws.obs {
					if err := m.Ingest(ws.id, ws.obs[i]); err != nil {
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	m.Close()
	wall := time.Since(start)

	sn := m.Snapshot()
	return sweepResult{
		rate:    float64(sn.Ingested) / wall.Seconds(),
		wall:    wall,
		drifts:  sn.Drifts,
		streams: sn.Streams,
		balance: balanceString(sn.ShardIngested),
	}, nil
}

// balanceString compacts the per-shard ingest counts into min/median/max.
func balanceString(loads []uint64) string {
	if len(loads) == 0 {
		return "-"
	}
	sorted := append([]uint64(nil), loads...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return fmt.Sprintf("min=%d med=%d max=%d", sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1])
}

// parseShards expands the -shards flag, defaulting to powers of two up to
// NumCPU.
func parseShards(s string) []int {
	if s == "" {
		var out []int
		for n := 1; n <= runtime.NumCPU(); n *= 2 {
			out = append(out, n)
		}
		if last := out[len(out)-1]; last != runtime.NumCPU() {
			out = append(out, runtime.NumCPU())
		}
		return out
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fail(fmt.Errorf("bad -shards entry %q", part))
		}
		out = append(out, n)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "monitorbench:", err)
	os.Exit(1)
}
