// Command localdrift reproduces Experiment 2 of the paper (Figure 8): the
// relationship between pmAUC and the number of classes affected by a local
// concept drift, for the 12 artificial benchmarks. Drift is injected into
// the smallest minority classes first, making the low end of each curve the
// hardest detection problem.
//
// Usage:
//
//	localdrift [-scale 0.02] [-seed 42] [-benchmarks RBF5,RBF10] [-values 1,3,5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rbmim/internal/eval"
)

func main() {
	scale := flag.Float64("scale", 0.02, "fraction of each benchmark's full length")
	seed := flag.Int64("seed", 42, "random seed")
	window := flag.Int("window", 1000, "prequential metric window")
	benchmarks := flag.String("benchmarks", "", "comma-separated artificial benchmark subset (default: all 12)")
	values := flag.String("values", "", "comma-separated class counts to sweep (default: 1..K)")
	parallel := flag.Int("parallel", 0, "worker goroutines (default: NumCPU)")
	flag.Parse()

	cfg := eval.SweepConfig{
		Scale:        *scale,
		Seed:         *seed,
		MetricWindow: *window,
		Parallelism:  *parallel,
	}
	if *benchmarks != "" {
		cfg.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if *values != "" {
		for _, v := range strings.Split(*values, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				fmt.Fprintln(os.Stderr, "localdrift: bad -values entry:", v)
				os.Exit(1)
			}
			cfg.Values = append(cfg.Values, n)
		}
	}
	out, err := eval.RunLocalDriftSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "localdrift:", err)
		os.Exit(1)
	}
	eval.WriteSweep(os.Stdout, out, "classes")
}
