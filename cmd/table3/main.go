// Command table3 reproduces Experiment 1 of the paper (Table III): the six
// drift detectors evaluated on the 24 benchmark streams under prequential
// multi-class AUC and G-mean, with Friedman average ranks and timing rows.
//
// Usage:
//
//	table3 [-scale 0.05] [-seed 42] [-window 1000] [-benchmarks EEG,RBF5] [-extras]
//
// Scale multiplies the Table I stream lengths (1.0 = full size).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rbmim/internal/eval"
)

func main() {
	scale := flag.Float64("scale", 0.05, "fraction of each benchmark's full length (1.0 = Table I size)")
	seed := flag.Int64("seed", 42, "random seed for streams and classifiers")
	window := flag.Int("window", 1000, "prequential metric window")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 24)")
	extras := flag.Bool("extras", false, "include the DDM/EDDM/ADWIN/HDDM-A extra baselines")
	parallel := flag.Int("parallel", 0, "worker goroutines (default: NumCPU)")
	flag.Parse()

	cfg := eval.Table3Config{
		Scale:         *scale,
		Seed:          *seed,
		MetricWindow:  *window,
		Parallelism:   *parallel,
		IncludeExtras: *extras,
	}
	if *benchmarks != "" {
		cfg.Benchmarks = strings.Split(*benchmarks, ",")
	}
	out, err := eval.RunTable3(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table3:", err)
		os.Exit(1)
	}
	eval.WriteTable3(os.Stdout, out)
	fmt.Println()
	eval.WriteRankAnalysis(os.Stdout, out, "pmauc")
	fmt.Println()
	eval.WriteRankAnalysis(os.Stdout, out, "pmgm")
}
