// Command imbalance reproduces Experiment 3 of the paper (Figure 9): the
// relationship between pmAUC and the multi-class imbalance ratio, swept over
// {50, 100, 200, 300, 400, 500} for the 12 artificial benchmarks.
//
// Usage:
//
//	imbalance [-scale 0.02] [-seed 42] [-benchmarks RBF5] [-values 50,200,500]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rbmim/internal/eval"
)

func main() {
	scale := flag.Float64("scale", 0.02, "fraction of each benchmark's full length")
	seed := flag.Int64("seed", 42, "random seed")
	window := flag.Int("window", 1000, "prequential metric window")
	benchmarks := flag.String("benchmarks", "", "comma-separated artificial benchmark subset (default: all 12)")
	values := flag.String("values", "", "comma-separated imbalance ratios (default: 50,100,200,300,400,500)")
	parallel := flag.Int("parallel", 0, "worker goroutines (default: NumCPU)")
	flag.Parse()

	cfg := eval.SweepConfig{
		Scale:        *scale,
		Seed:         *seed,
		MetricWindow: *window,
		Parallelism:  *parallel,
	}
	if *benchmarks != "" {
		cfg.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if *values != "" {
		for _, v := range strings.Split(*values, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				fmt.Fprintln(os.Stderr, "imbalance: bad -values entry:", v)
				os.Exit(1)
			}
			cfg.Values = append(cfg.Values, n)
		}
	}
	out, err := eval.RunImbalanceSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imbalance:", err)
		os.Exit(1)
	}
	eval.WriteSweep(os.Stdout, out, "IR")
}
