// Command benchprops reproduces Table I (properties of the 24 benchmark
// data streams) and, with -grids, Table II (the hyper-parameter grids of the
// six compared detectors).
//
// Usage:
//
//	benchprops [-grids] [-scale 0.05]
package main

import (
	"flag"
	"fmt"

	"rbmim/internal/eval"
	"rbmim/internal/realworld"
)

func main() {
	grids := flag.Bool("grids", false, "print the Table II parameter grids")
	scale := flag.Float64("scale", 0.05, "show effective instance counts at this scale")
	flag.Parse()

	fmt.Println("Table I: properties of real-world-surrogate (top) and artificial (bottom) streams")
	fmt.Printf("%-14s %12s %12s %9s %8s %8s  %s\n",
		"Dataset", "Instances", "(scaled)", "Features", "Classes", "IR", "Drift")
	for _, s := range realworld.All() {
		fmt.Printf("%-14s %12d %12d %9d %8d %8.2f  %s\n",
			s.Name, s.Instances, s.ScaledInstances(*scale), s.Features, s.Classes, s.IR, s.Drift)
	}
	for _, s := range eval.Artificial() {
		scaled := int(float64(s.Instances) * *scale)
		if scaled < 3000 {
			scaled = 3000
		}
		fmt.Printf("%-14s %12d %12d %9d %8d %8.2f  %s\n",
			s.Name, s.Instances, scaled, s.Features, s.Classes, s.IR, s.Drift)
	}

	if *grids {
		fmt.Println()
		fmt.Println("Table II: examined detectors and their parameter grids")
		for _, g := range eval.DefaultGrids() {
			fmt.Printf("%-8s\n", g.Detector)
			for _, p := range g.Params {
				fmt.Printf("    %-18s %v\n", p.Name, p.Values)
			}
		}
	}
}
