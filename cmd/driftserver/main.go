// Command driftserver serves a sharded multi-stream drift monitor over TCP:
// the wire protocol of internal/server (codec-framed binary requests:
// ingest, batch ingest, subscriptions, snapshots, evict, checkpoint flush,
// last-drift reports) plus an optional HTTP sidecar with /healthz
// (liveness), /readyz (readiness; 503 while draining), and Prometheus
// /metrics including per-stage latency histograms (rbmim_stage_seconds).
// Clients connect with rbmim.Dial; cmd/monitorbench -remote drives a
// running server as a load generator.
//
// Usage:
//
//	driftserver -features 20 -classes 5
//	            [-addr 127.0.0.1:7365] [-http 127.0.0.1:7366] [-pprof]
//	            [-shards N] [-queue 4096] [-seed 7]
//	            [-checkpoint mem|DIR] [-ckptint 30s] [-idlettl 0]
//	            [-subevict 0] [-shed 0.9] [-dedupwindow 1024] [-sessions 1024]
//	            [-telemetry full|basic|off]
//
// -telemetry full (the default) times every hot-path stage — per-kind
// request service, shard queue wait, detector updates, checkpoint writes —
// into log2 latency histograms; basic keeps only the wire-visible serve_*
// stages; off removes all timing. The level never changes drift decisions.
//
// With -checkpoint DIR the per-stream detector states live in a filesystem
// store: a killed server restarted against the same directory rehydrates
// every stream and continues detection exactly where the last flushed
// checkpoint left off (clients can force durability via FlushCheckpoints).
// On SIGINT/SIGTERM the server drains its connections, flushes the store,
// and prints a final canonical-JSON snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rbmim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7365", "TCP listen address (use :0 for a kernel-chosen port)")
	httpAddr := flag.String("http", "", "HTTP sidecar address for /healthz and /metrics (empty disables)")
	pprof := flag.Bool("pprof", false, "expose net/http/pprof handlers on the HTTP sidecar (requires -http)")
	features := flag.Int("features", 0, "features per observation (required)")
	classes := flag.Int("classes", 0, "classes per stream (required)")
	shards := flag.Int("shards", 0, "worker shards (default NumCPU)")
	queue := flag.Int("queue", 0, "per-shard queue capacity (default 1024)")
	seed := flag.Int64("seed", 7, "base detector seed (each stream decorrelates from it)")
	adaptive := flag.Bool("adaptive", false, "enable RBM-IM's self-adaptive window on every stream's detector")
	checkpoint := flag.String("checkpoint", "", `checkpoint store: "mem" or a directory (empty disables)`)
	ckptInt := flag.Duration("ckptint", 30*time.Second, "periodic snapshot cadence when -checkpoint is set")
	idleTTL := flag.Duration("idlettl", 0, "evict streams idle for this long (0 disables; evicted state spills to the store)")
	maxFrame := flag.Int("maxframe", 0, "maximum request frame payload in bytes (default 16 MiB)")
	subEvict := flag.Int("subevict", 0, "evict a subscriber after this many dropped events (0 = drop-only, never evict)")
	shed := flag.Float64("shed", 0, "overload shedding high water as a fraction of shard queue capacity (0 disables; e.g. 0.9)")
	dedupWindow := flag.Int("dedupwindow", 0, "exactly-once dedup window per (session, stream) in sequence numbers (default 1024; negative disables)")
	sessions := flag.Int("sessions", 0, "maximum client sessions tracked for dedup before LRU eviction (default 1024)")
	telemetryLevel := flag.String("telemetry", "full", "latency telemetry granularity: full, basic, or off")
	flag.Parse()

	tele, err := rbmim.ParseTelemetryLevel(*telemetryLevel)
	if err != nil {
		fail(err)
	}

	var ckpt rbmim.CheckpointConfig
	switch *checkpoint {
	case "":
	case "mem":
		ckpt = rbmim.CheckpointConfig{Store: rbmim.NewMemStore(), Interval: *ckptInt}
	default:
		store, err := rbmim.NewFSStore(*checkpoint)
		if err != nil {
			fail(err)
		}
		ckpt = rbmim.CheckpointConfig{Store: store, Interval: *ckptInt}
	}
	m, err := rbmim.NewMonitor(rbmim.MonitorConfig{
		Detector:             rbmim.DetectorConfig{Features: *features, Classes: *classes, Seed: *seed, AdaptiveWindow: *adaptive},
		Shards:               *shards,
		QueueSize:            *queue,
		IdleTTL:              *idleTTL,
		Checkpoint:           ckpt,
		SubscriberEvictDrops: *subEvict,
		Telemetry:            tele,
	})
	if err != nil {
		fail(err)
	}
	srv, err := rbmim.NewServer(rbmim.ServerConfig{
		Monitor:       m,
		Addr:          *addr,
		HTTPAddr:      *httpAddr,
		MaxFrame:      *maxFrame,
		Pprof:         *pprof,
		ShedHighWater: *shed,
		DedupWindow:   *dedupWindow,
		MaxSessions:   *sessions,
		Telemetry:     tele,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("driftserver: serving on %s\n", srv.Addr())
	if h := srv.HTTPAddr(); h != "" {
		fmt.Printf("driftserver: metrics on http://%s/metrics\n", h)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("driftserver: %s, shutting down\n", s)
	srv.Close() // drain connections, stop accepting
	m.Close()   // drain shards, flush the checkpoint store
	// The canonical stable-field-order snapshot encoding (the same bytes
	// /metrics consumers and monitorbench -json see).
	fmt.Printf("driftserver: final snapshot %s\n", m.Snapshot().AppendJSON(nil))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "driftserver:", err)
	os.Exit(1)
}
