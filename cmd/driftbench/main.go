// Command driftbench orchestrates the full reproduction: Table I
// properties, the Table III detector comparison with Friedman /
// Bonferroni-Dunn rank analysis (Figures 4-5), the Bayesian signed tests
// (Figures 6-7), the local-drift sweep (Figure 8), and the imbalance-ratio
// robustness sweep (Figure 9). Each experiment honours the shared -scale
// and -seed flags; individual experiments can be selected with -run.
//
// Usage:
//
//	driftbench [-run all|table3|ranks|bayes|fig8|fig9] [-scale 0.02] [-seed 42]
//	           [-block 1] [-cpuprofile cpu.out] [-memprofile mem.out]
//
// A full run at -scale 0.02 finishes in a few minutes on a laptop; use
// -scale 1.0 for the paper's full stream lengths. The -cpuprofile and
// -memprofile flags write pprof profiles of the selected experiments so
// performance PRs can ship before/after evidence (see EXPERIMENTS.md,
// "Profiling the reproduction").
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rbmim/internal/eval"
)

func main() {
	run := flag.String("run", "all", "experiments: all, table3, ranks, bayes, fig8, fig9")
	scale := flag.Float64("scale", 0.02, "fraction of each benchmark's full length (1.0 = Table I size)")
	seed := flag.Int64("seed", 42, "random seed")
	window := flag.Int("window", 1000, "prequential metric window")
	parallel := flag.Int("parallel", 0, "worker goroutines (default: NumCPU)")
	rope := flag.Float64("rope", 1.0, "Bayesian signed test rope (metric points)")
	blockSize := flag.Int("block", 1, "prequential block length fed to every pipeline (1 = classic per-instance loop)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "driftbench:", err)
				return
			}
			fmt.Printf("wrote CPU profile to %s\n", *cpuprofile)
		}
		defer flushProfiles()
	}
	if *memprofile != "" {
		writeHeapProfile = func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "driftbench:", err)
				return
			}
			runtime.GC() // materialize the steady-state live set
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "driftbench:", err)
				return
			}
			fmt.Printf("wrote heap profile to %s\n", *memprofile)
		}
		defer flushProfiles()
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*run, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]
	started := time.Now()

	var table3 *eval.Table3Output
	needTable3 := all || want["table3"] || want["ranks"] || want["bayes"]
	if needTable3 {
		fmt.Printf("== Experiment 1 (Table III), scale=%.3f ==\n", *scale)
		out, err := eval.RunTable3(eval.Table3Config{
			Scale:        *scale,
			Seed:         *seed,
			MetricWindow: *window,
			Parallelism:  *parallel,
			BlockSize:    *blockSize,
		})
		if err != nil {
			fail(err)
		}
		table3 = out
		eval.WriteTable3(os.Stdout, out)
		fmt.Println()
	}
	if all || want["ranks"] {
		fmt.Println("== Figures 4-5: Bonferroni-Dunn rank analysis ==")
		eval.WriteRankAnalysis(os.Stdout, table3, "pmauc")
		fmt.Println()
		eval.WriteRankAnalysis(os.Stdout, table3, "pmgm")
		fmt.Println()
	}
	if all || want["bayes"] {
		fmt.Println("== Figures 6-7: Bayesian signed tests ==")
		for _, metric := range []string{"pmauc", "pmgm"} {
			for _, baseline := range []string{"PerfSim", "DDM-OCI"} {
				if err := eval.WriteBayesianComparison(os.Stdout, table3, baseline, "RBM-IM", metric, *rope, *seed); err != nil {
					fail(err)
				}
				fmt.Println()
			}
		}
	}
	if all || want["fig8"] {
		fmt.Printf("== Experiment 2 (Figure 8): local drift sweep, scale=%.3f ==\n", *scale)
		out, err := eval.RunLocalDriftSweep(eval.SweepConfig{
			Scale:        *scale,
			Seed:         *seed,
			MetricWindow: *window,
			Parallelism:  *parallel,
			BlockSize:    *blockSize,
		})
		if err != nil {
			fail(err)
		}
		eval.WriteSweep(os.Stdout, out, "classes")
		fmt.Println()
	}
	if all || want["fig9"] {
		fmt.Printf("== Experiment 3 (Figure 9): imbalance-ratio sweep, scale=%.3f ==\n", *scale)
		out, err := eval.RunImbalanceSweep(eval.SweepConfig{
			Scale:        *scale,
			Seed:         *seed,
			MetricWindow: *window,
			Parallelism:  *parallel,
			BlockSize:    *blockSize,
		})
		if err != nil {
			fail(err)
		}
		eval.WriteSweep(os.Stdout, out, "IR")
		fmt.Println()
	}
	fmt.Printf("done in %s\n", time.Since(started).Round(time.Second))
}

// stopCPUProfile / writeHeapProfile are installed by main when the
// corresponding flags are set; flushProfiles runs each at most once, both
// on the normal defer path and from fail — os.Exit skips defers, and a
// truncated CPU profile of a failed run is exactly the artifact one wants
// most.
var stopCPUProfile, writeHeapProfile func()

func flushProfiles() {
	if stopCPUProfile != nil {
		stopCPUProfile()
		stopCPUProfile = nil
	}
	if writeHeapProfile != nil {
		writeHeapProfile()
		writeHeapProfile = nil
	}
}

func fail(err error) {
	flushProfiles()
	fmt.Fprintln(os.Stderr, "driftbench:", err)
	os.Exit(1)
}
