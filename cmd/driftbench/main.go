// Command driftbench orchestrates the full reproduction: Table I
// properties, the Table III detector comparison with Friedman /
// Bonferroni-Dunn rank analysis (Figures 4-5), the Bayesian signed tests
// (Figures 6-7), the local-drift sweep (Figure 8), and the imbalance-ratio
// robustness sweep (Figure 9). Each experiment honours the shared -scale
// and -seed flags; individual experiments can be selected with -run.
//
// Usage:
//
//	driftbench [-run all|table3|ranks|bayes|fig8|fig9|resume] [-scale 0.02]
//	           [-seed 42] [-block 1] [-cpuprofile cpu.out] [-memprofile mem.out]
//	           [-checkpoint ck.bin] [-resume ck.bin]
//
// A full run at -scale 0.02 finishes in a few minutes on a laptop; use
// -scale 1.0 for the paper's full stream lengths. The -cpuprofile and
// -memprofile flags write pprof profiles of the selected experiments so
// performance PRs can ship before/after evidence (see EXPERIMENTS.md,
// "Profiling the reproduction").
//
// -run resume demonstrates kill-and-resume mid-stream on a drifting
// benchmark stream. Three invocations tell the whole story:
//
//	driftbench -run resume                       # uninterrupted reference
//	driftbench -run resume -checkpoint ck.bin    # train half, save, "die"
//	driftbench -run resume -resume ck.bin        # load, finish the stream
//
// The resumed invocation reports the same drift decisions and the same
// final RBM weight checksum as the uninterrupted reference — the detector
// state round-trips bit for bit (the checkpoint is taken mid-mini-batch on
// purpose).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rbmim"
	"rbmim/internal/eval"
)

func main() {
	run := flag.String("run", "all", "experiments: all, table3, ranks, bayes, fig8, fig9")
	scale := flag.Float64("scale", 0.02, "fraction of each benchmark's full length (1.0 = Table I size)")
	seed := flag.Int64("seed", 42, "random seed")
	window := flag.Int("window", 1000, "prequential metric window")
	parallel := flag.Int("parallel", 0, "worker goroutines (default: NumCPU)")
	rope := flag.Float64("rope", 1.0, "Bayesian signed test rope (metric points)")
	blockSize := flag.Int("block", 1, "prequential block length fed to every pipeline (1 = classic per-instance loop)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	checkpoint := flag.String("checkpoint", "", "with -run resume: save the detector mid-stream to this file and stop")
	resume := flag.String("resume", "", "with -run resume: load the detector from this file and run the second half")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "driftbench:", err)
				return
			}
			fmt.Printf("wrote CPU profile to %s\n", *cpuprofile)
		}
		defer flushProfiles()
	}
	if *memprofile != "" {
		writeHeapProfile = func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "driftbench:", err)
				return
			}
			runtime.GC() // materialize the steady-state live set
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "driftbench:", err)
				return
			}
			fmt.Printf("wrote heap profile to %s\n", *memprofile)
		}
		defer flushProfiles()
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*run, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]
	started := time.Now()

	if want["resume"] {
		if err := runResumeDemo(*seed, *checkpoint, *resume); err != nil {
			fail(err)
		}
		if !all && len(want) == 1 {
			fmt.Printf("done in %s\n", time.Since(started).Round(time.Millisecond))
			return
		}
	}

	var table3 *eval.Table3Output
	needTable3 := all || want["table3"] || want["ranks"] || want["bayes"]
	if needTable3 {
		fmt.Printf("== Experiment 1 (Table III), scale=%.3f ==\n", *scale)
		out, err := eval.RunTable3(eval.Table3Config{
			Scale:        *scale,
			Seed:         *seed,
			MetricWindow: *window,
			Parallelism:  *parallel,
			BlockSize:    *blockSize,
		})
		if err != nil {
			fail(err)
		}
		table3 = out
		eval.WriteTable3(os.Stdout, out)
		fmt.Println()
	}
	if all || want["ranks"] {
		fmt.Println("== Figures 4-5: Bonferroni-Dunn rank analysis ==")
		eval.WriteRankAnalysis(os.Stdout, table3, "pmauc")
		fmt.Println()
		eval.WriteRankAnalysis(os.Stdout, table3, "pmgm")
		fmt.Println()
	}
	if all || want["bayes"] {
		fmt.Println("== Figures 6-7: Bayesian signed tests ==")
		for _, metric := range []string{"pmauc", "pmgm"} {
			for _, baseline := range []string{"PerfSim", "DDM-OCI"} {
				if err := eval.WriteBayesianComparison(os.Stdout, table3, baseline, "RBM-IM", metric, *rope, *seed); err != nil {
					fail(err)
				}
				fmt.Println()
			}
		}
	}
	if all || want["fig8"] {
		fmt.Printf("== Experiment 2 (Figure 8): local drift sweep, scale=%.3f ==\n", *scale)
		out, err := eval.RunLocalDriftSweep(eval.SweepConfig{
			Scale:        *scale,
			Seed:         *seed,
			MetricWindow: *window,
			Parallelism:  *parallel,
			BlockSize:    *blockSize,
		})
		if err != nil {
			fail(err)
		}
		eval.WriteSweep(os.Stdout, out, "classes")
		fmt.Println()
	}
	if all || want["fig9"] {
		fmt.Printf("== Experiment 3 (Figure 9): imbalance-ratio sweep, scale=%.3f ==\n", *scale)
		out, err := eval.RunImbalanceSweep(eval.SweepConfig{
			Scale:        *scale,
			Seed:         *seed,
			MetricWindow: *window,
			Parallelism:  *parallel,
			BlockSize:    *blockSize,
		})
		if err != nil {
			fail(err)
		}
		eval.WriteSweep(os.Stdout, out, "IR")
		fmt.Println()
	}
	fmt.Printf("done in %s\n", time.Since(started).Round(time.Second))
}

// resumeDemo parameters: a drifting stream long enough for several
// mini-batches on each side of the cut, with the cut deliberately mid-batch
// so the partial mini-batch rides through the checkpoint.
const (
	resumeTotal = 20000
	resumeCut   = 10177
)

// resumeStream rebuilds the demo stream deterministically: two RBF concepts
// with a sudden switch shortly after the cut, so the interesting detection
// work happens in the resumed half.
func resumeStream(seed int64) (rbmim.Stream, error) {
	cfg := rbmim.GeneratorConfig{Features: 12, Classes: 5, Seed: seed + 1}
	before, err := rbmim.NewRBF(cfg, 3, 0.08)
	if err != nil {
		return nil, err
	}
	afterCfg := cfg
	afterCfg.Seed = seed + 2
	after, err := rbmim.NewRBF(afterCfg, 3, 0.08)
	if err != nil {
		return nil, err
	}
	return rbmim.NewDriftStream(before, after, rbmim.SuddenDrift, resumeTotal*3/5, 0, seed+3), nil
}

// runResumeDemo is the -run resume experiment (kill-and-resume mid-stream);
// see the package comment for the three-invocation walkthrough.
func runResumeDemo(seed int64, checkpointPath, resumePath string) error {
	fmt.Println("== Kill-and-resume demo (checkpointable detector state) ==")
	s, err := resumeStream(seed)
	if err != nil {
		return err
	}
	det, err := rbmim.NewDetector(rbmim.DetectorConfig{Features: 12, Classes: 5, Seed: seed})
	if err != nil {
		return err
	}
	feed := func(from, to int, drifts int) int {
		for i := from; i < to; i++ {
			in := s.Next()
			if det.Update(rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}) == rbmim.Drift {
				drifts++
			}
		}
		return drifts
	}

	start, drifts := 0, 0
	if resumePath != "" {
		data, err := os.ReadFile(resumePath)
		if err != nil {
			return err
		}
		if err := rbmim.LoadDetector(det, bytes.NewReader(data)); err != nil {
			return err
		}
		// Position the stream at the cut: the generator is seeded, so
		// replaying (and discarding) the consumed prefix reproduces it.
		for i := 0; i < resumeCut; i++ {
			s.Next()
		}
		start = resumeCut
		fmt.Printf("resumed from %s (%d bytes) at observation %d\n", resumePath, len(data), resumeCut)
	}

	if checkpointPath != "" && resumePath == "" {
		drifts = feed(0, resumeCut, drifts)
		f, err := os.Create(checkpointPath)
		if err != nil {
			return err
		}
		err = rbmim.SaveDetector(det, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		info, _ := os.Stat(checkpointPath)
		fmt.Printf("trained %d/%d observations, saved checkpoint to %s (%d bytes); rerun with -resume %s\n",
			resumeCut, resumeTotal, checkpointPath, info.Size(), checkpointPath)
		return nil
	}

	if start == 0 {
		// Uninterrupted reference: run the prefix too, but report the
		// post-cut half separately so the number is directly comparable to a
		// resumed invocation.
		drifts = feed(0, resumeCut, drifts)
	}
	post := feed(resumeCut, resumeTotal, 0)
	fmt.Printf("finished at observation %d: drifts after the cut %d (total %d), final weight checksum %#016x\n",
		resumeTotal, post, drifts+post, det.RBM().WeightChecksum())
	if resumePath != "" {
		fmt.Println("compare against `driftbench -run resume` (uninterrupted): post-cut drifts and checksum match bit for bit")
	}
	return nil
}

// stopCPUProfile / writeHeapProfile are installed by main when the
// corresponding flags are set; flushProfiles runs each at most once, both
// on the normal defer path and from fail — os.Exit skips defers, and a
// truncated CPU profile of a failed run is exactly the artifact one wants
// most.
var stopCPUProfile, writeHeapProfile func()

func flushProfiles() {
	if stopCPUProfile != nil {
		stopCPUProfile()
		stopCPUProfile = nil
	}
	if writeHeapProfile != nil {
		writeHeapProfile()
		writeHeapProfile = nil
	}
}

func fail(err error) {
	flushProfiles()
	fmt.Fprintln(os.Stderr, "driftbench:", err)
	os.Exit(1)
}
