// Class-role switching: Scenario 2 of the paper's taxonomy. The imbalance
// ratio oscillates and classes periodically trade roles — yesterday's
// majority becomes today's minority. Static detectors keep statistics keyed
// to a fixed notion of "the majority"; RBM-IM's class-balanced loss uses
// decayed class counts, so its per-class weighting follows the roles as
// they move. The example visualizes the detector's internal class weights
// and reconstruction errors across role switches.
//
// Run with:
//
//	go run ./examples/classroles
package main

import (
	"fmt"
	"log"
	"strings"

	"rbmim"
)

func main() {
	const (
		features = 10
		classes  = 4
		horizon  = 40000
		period   = 10000 // role rotation period
	)

	base, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: features, Classes: classes, Seed: 31}, 3, 0.07)
	if err != nil {
		log.Fatal(err)
	}
	// IR swings 20..120 and the class roles rotate every `period`
	// instances: class 0 starts as the majority, then class 1 takes over,
	// and so on.
	stream := rbmim.NewDynamicImbalance(base, 20, 120, period, period, 32)

	det, err := rbmim.NewDetector(rbmim.DetectorConfig{Features: features, Classes: classes, Seed: 33})
	if err != nil {
		log.Fatal(err)
	}

	counts := make([]int, classes)
	fmt.Println("t        | window class frequencies      | per-class reconstruction error")
	for i := 0; i < horizon; i++ {
		in := stream.Next()
		counts[in.Y]++
		det.Update(rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y})
		if (i+1)%(period/2) == 0 {
			total := 0
			for _, c := range counts {
				total += c
			}
			var freq []string
			for _, c := range counts {
				freq = append(freq, fmt.Sprintf("%4.1f%%", 100*float64(c)/float64(total)))
			}
			var errs []string
			for _, e := range det.LastErrors() {
				errs = append(errs, fmt.Sprintf("%.3f", e))
			}
			fmt.Printf("%-8d | %s | %s\n", i+1, strings.Join(freq, " "), strings.Join(errs, " "))
			for k := range counts {
				counts[k] = 0
			}
		}
	}

	fmt.Println()
	fmt.Println("note how the frequency column rotates every", period, "instances while")
	fmt.Println("the reconstruction-error column stays level: the detector's view of")
	fmt.Println("each class is independent of how often that class currently appears,")
	fmt.Println("which is exactly the skew-insensitivity the paper's loss provides.")
}
