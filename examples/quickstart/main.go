// Quickstart: attach RBM-IM to a drifting multi-class imbalanced stream and
// watch it flag the concept change — including which classes were affected.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rbmim"
)

func main() {
	// A 5-class, 12-feature RBF stream whose concept changes suddenly at
	// instance 15000 (a brand-new set of class clusters), reshaped to a
	// 1:50 worst-case class imbalance.
	before, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 12, Classes: 5, Seed: 1}, 3, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	after, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 12, Classes: 5, Seed: 2}, 3, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	drifting := rbmim.NewDriftStream(before, after, rbmim.SuddenDrift, 15000, 0, 3)
	stream := rbmim.NewImbalanced(drifting, 50, 4)

	// The detector only needs the stream's shape; everything else defaults
	// to the paper-aligned configuration (mini-batches of 50, CD-1,
	// class-balanced loss, ADWIN-adapted trend windows, Granger
	// confirmation at alpha = 0.05).
	det, err := rbmim.NewDetector(rbmim.DetectorConfig{Features: 12, Classes: 5, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("processing 30000 instances; true drift at 15000 ...")
	for i := 0; i < 30000; i++ {
		in := stream.Next()
		// In a real deployment Predicted comes from your classifier; the
		// detector's reconstruction-error machinery only requires features
		// and the true label.
		state := det.Update(rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y})
		switch state {
		case rbmim.Drift:
			fmt.Printf("  instance %6d: DRIFT on classes %v\n", i, det.DriftClasses())
		case rbmim.Warning:
			// Warnings are frequent and cheap; uncomment to see them.
			// fmt.Printf("  instance %6d: warning\n", i)
		}
	}

	fmt.Println("\nper-class reconstruction errors at the end of the stream:")
	for k, e := range det.LastErrors() {
		fmt.Printf("  class %d: %.4f\n", k, e)
	}
}
