// Intrusion detection: the cyber-security scenario from the paper's
// introduction. Network traffic is dominated by legitimate flows; several
// attack families appear at very different (and low) rates. One rare attack
// family mutates to evade the deployed rules — a *local* concept drift that
// only touches a single minority class. A global drift detector never sees
// it; RBM-IM attributes it to the right class, and the paired classifier
// adapts only where it must.
//
// Run with:
//
//	go run ./examples/intrusion
package main

import (
	"fmt"
	"log"

	"rbmim"
)

// Traffic classes.
const (
	legit = iota
	portScan
	dos
	bruteForce
	exfiltration // the rarest family — and the one that mutates
	nClasses
)

var classNames = [nClasses]string{"legit", "port-scan", "dos", "brute-force", "exfiltration"}

func main() {
	const (
		features = 16
		horizon  = 60000
		mutation = 30000 // the exfiltration family changes here
	)

	// Base traffic: each class is a cluster of flow-statistics prototypes.
	base, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: features, Classes: nClasses, Seed: 11}, 4, 0.07)
	if err != nil {
		log.Fatal(err)
	}
	// Legit traffic dominates at 300:1 against the rarest attack.
	skewed := rbmim.NewImbalanced(base, 300, 12)
	// The mutation: a sudden local drift confined to the exfiltration
	// class — its flows start imitating legitimate traffic patterns.
	traffic := rbmim.NewLocalDriftInjector(skewed, []int{exfiltration}, rbmim.SuddenDrift, mutation, 0, 13)

	det, err := rbmim.NewDetector(rbmim.DetectorConfig{Features: features, Classes: nClasses, Seed: 14})
	if err != nil {
		log.Fatal(err)
	}

	res := rbmim.RunPipeline(traffic, det, rbmim.PipelineConfig{
		Instances:    horizon,
		MetricWindow: 1000,
		Seed:         15,
	})

	fmt.Printf("processed %d flows (attack mutation at %d)\n\n", horizon, mutation)
	fmt.Printf("prequential multi-class AUC: %.2f\n", res.PMAUC)
	fmt.Printf("prequential multi-class G-mean: %.2f\n\n", res.PMGM)

	fmt.Println("drift signals:")
	for _, at := range res.Signals {
		marker := "(false alarm)"
		if at >= mutation && at <= mutation+6000 {
			marker = "(caught the mutation)"
		}
		fmt.Printf("  flow %6d %s\n", at, marker)
	}
	if res.TruePositives > 0 {
		fmt.Printf("\nmutation detected with mean delay of %.0f flows.\n", res.MeanDelay)
	} else {
		fmt.Println("\nmutation missed — try a larger horizon or smaller batch size.")
	}

	fmt.Println("\nwhat a per-class detector buys you: the drift is attributed to")
	fmt.Printf("specific classes, so only those classes' models are adapted —\n")
	fmt.Printf("here, %q — instead of discarding everything the system has\n", classNames[exfiltration])
	fmt.Println("learned about the other four traffic families.")
}
