// Sensor network monitoring: an IntelSensors-like stream — few features,
// many classes (sensor nodes), extreme imbalance (chatty gateway nodes vs
// rarely-reporting leaf nodes), and sudden drifts when nodes are moved or
// recalibrated. The example compares RBM-IM against a classic global
// detector (DDM) under the same prequential pipeline, reporting the metrics
// of the paper's evaluation.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"rbmim"
)

func main() {
	const (
		features = 6
		classes  = 24 // sensor nodes
		horizon  = 80000
	)

	build := func(seed int64) rbmim.Stream {
		// Two "deployments": node positions change suddenly mid-stream.
		before, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: features, Classes: classes, Seed: seed}, 2, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		after, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: features, Classes: classes, Seed: seed + 100}, 2, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		moved := rbmim.NewDriftStream(before, after, rbmim.SuddenDrift, horizon/2, 0, seed+1)
		// Reporting rates oscillate between 50:1 and 350:1 and node roles
		// rotate (busy nodes go quiet and vice versa) — Scenario 2 of the
		// paper.
		return rbmim.NewDynamicImbalance(moved, 50, 350, horizon/2, horizon/4, seed+2)
	}

	run := func(name string, det rbmim.Detector) rbmim.Result {
		res := rbmim.RunPipeline(build(21), det, rbmim.PipelineConfig{
			Instances:    horizon,
			MetricWindow: 1000,
			Seed:         22,
		})
		fmt.Printf("%-8s pmAUC=%6.2f  pmGM=%6.2f  signals=%3d  detected=%d/%d  falseAlarms=%d\n",
			name, res.PMAUC, res.PMGM, len(res.Signals),
			res.TruePositives, res.TruePositives+res.MissedDrifts, res.FalseAlarms)
		return res
	}

	fmt.Printf("sensor network: %d nodes, IR up to 350, node relocation at %d\n\n", classes, horizon/2)

	det, err := rbmim.NewDetector(rbmim.DetectorConfig{Features: features, Classes: classes, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	rbmRes := run("RBM-IM", det)
	ddmRes := run("DDM", rbmim.NewDDM())
	perfRes := run("PerfSim", rbmim.NewPerfSim(classes))

	fmt.Println()
	switch {
	case rbmRes.PMAUC >= ddmRes.PMAUC && rbmRes.PMAUC >= perfRes.PMAUC:
		fmt.Println("RBM-IM leads on this deployment — its per-class error")
		fmt.Println("monitoring is unaffected by which nodes currently dominate.")
	default:
		fmt.Println("results vary by seed at this horizon; sweep seeds or raise")
		fmt.Println("the horizon for the paper-scale comparison (cmd/table3).")
	}
}
