package rbmim_test

import (
	"fmt"
	"log"

	"rbmim"
)

// ExampleNewDetector attaches RBM-IM to a multi-class imbalanced stream
// whose concept changes suddenly halfway through, and reports whether the
// detector flagged the change.
func ExampleNewDetector() {
	det, err := rbmim.NewDetector(rbmim.DetectorConfig{Features: 12, Classes: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Two different RBF concepts glued together with a sudden transition at
	// instance 15000, reshaped to a 1:50 class imbalance.
	before, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 12, Classes: 5, Seed: 2}, 3, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	after, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 12, Classes: 5, Seed: 3}, 3, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	s := rbmim.NewImbalanced(
		rbmim.NewDriftStream(before, after, rbmim.SuddenDrift, 15000, 0, 4), 50, 4)

	detected := false
	for i := 0; i < 30000; i++ {
		in := s.Next()
		// In production Predicted comes from your classifier; RBM-IM's
		// detection uses the instance and its true label.
		state := det.Update(rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y})
		if state == rbmim.Drift {
			detected = true
			break
		}
	}
	fmt.Println("drift detected:", detected)
	// Output:
	// drift detected: true
}

// ExampleMonitor multiplexes several independent streams onto one sharded
// Monitor, each stream getting its own RBM-IM detector, and reads the
// aggregate snapshot.
func ExampleMonitor() {
	m, err := rbmim.NewMonitor(rbmim.MonitorConfig{
		Detector: rbmim.DetectorConfig{Features: 8, Classes: 3, Seed: 7},
		Shards:   4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Subscribe to drift events from every stream (none fire here: the
	// streams below are stationary).
	go func() {
		for ev := range m.Events() {
			log.Printf("stream %s drifted on classes %v", ev.StreamID, ev.Classes)
		}
	}()

	for s := 0; s < 4; s++ {
		gen, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 8, Classes: 3, Seed: int64(s)}, 3, 0.08)
		if err != nil {
			log.Fatal(err)
		}
		id := fmt.Sprintf("sensor-%d", s)
		for i := 0; i < 2000; i++ {
			in := gen.Next()
			if err := m.Ingest(id, rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}); err != nil {
				log.Fatal(err)
			}
		}
	}
	m.Close() // drains the shards and closes the event channel

	sn := m.Snapshot()
	fmt.Printf("streams=%d ingested=%d\n", sn.Streams, sn.Ingested)
	// Output:
	// streams=4 ingested=8000
}
