package rbmim_test

import (
	"bytes"
	"fmt"
	"log"

	"rbmim"
)

// ExampleNewDetector attaches RBM-IM to a multi-class imbalanced stream
// whose concept changes suddenly halfway through, and reports whether the
// detector flagged the change.
func ExampleNewDetector() {
	det, err := rbmim.NewDetector(rbmim.DetectorConfig{Features: 12, Classes: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Two different RBF concepts glued together with a sudden transition at
	// instance 15000, reshaped to a 1:50 class imbalance.
	before, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 12, Classes: 5, Seed: 2}, 3, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	after, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 12, Classes: 5, Seed: 3}, 3, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	s := rbmim.NewImbalanced(
		rbmim.NewDriftStream(before, after, rbmim.SuddenDrift, 15000, 0, 4), 50, 4)

	detected := false
	for i := 0; i < 30000; i++ {
		in := s.Next()
		// In production Predicted comes from your classifier; RBM-IM's
		// detection uses the instance and its true label.
		state := det.Update(rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y})
		if state == rbmim.Drift {
			detected = true
			break
		}
	}
	fmt.Println("drift detected:", detected)
	// Output:
	// drift detected: true
}

// ExampleMonitor multiplexes several independent streams onto one sharded
// Monitor, each stream getting its own RBM-IM detector, and reads the
// aggregate snapshot.
func ExampleMonitor() {
	m, err := rbmim.NewMonitor(rbmim.MonitorConfig{
		Detector: rbmim.DetectorConfig{Features: 8, Classes: 3, Seed: 7},
		Shards:   4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Subscribe to drift events from every stream (none fire here: the
	// streams below are stationary).
	go func() {
		for ev := range m.Events() {
			log.Printf("stream %s drifted on classes %v", ev.StreamID, ev.Classes)
		}
	}()

	for s := 0; s < 4; s++ {
		gen, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 8, Classes: 3, Seed: int64(s)}, 3, 0.08)
		if err != nil {
			log.Fatal(err)
		}
		id := fmt.Sprintf("sensor-%d", s)
		for i := 0; i < 2000; i++ {
			in := gen.Next()
			if err := m.Ingest(id, rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}); err != nil {
				log.Fatal(err)
			}
		}
	}
	m.Close() // drains the shards and closes the event channel

	sn := m.Snapshot()
	fmt.Printf("streams=%d ingested=%d\n", sn.Streams, sn.Ingested)
	// Output:
	// streams=4 ingested=8000
}

// ExampleSaveDetector checkpoints a trained RBM-IM detector and restores it
// into a fresh instance. The restored detector is exact: continuing to feed
// it is bit-identical to the original never having stopped (weights, class
// counts, scaler bounds, trend statistics, partial mini-batch, and RNG
// position are all part of the snapshot).
func ExampleSaveDetector() {
	cfg := rbmim.DetectorConfig{Features: 8, Classes: 3, Seed: 1}
	det, err := rbmim.NewDetector(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 8, Classes: 3, Seed: 2}, 3, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1234; i++ { // 1234 = mid-mini-batch, which is fine
		in := s.Next()
		det.Update(rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y})
	}

	// Save to any io.Writer — here a buffer; a file works the same way.
	var snapshot bytes.Buffer
	if err := rbmim.SaveDetector(det, &snapshot); err != nil {
		log.Fatal(err)
	}

	// A fresh process would rebuild the detector with the same config and
	// load the snapshot.
	resumed, err := rbmim.NewDetector(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := rbmim.LoadDetector(resumed, &snapshot); err != nil {
		log.Fatal(err)
	}

	// Both copies now evolve identically.
	identical := true
	for i := 0; i < 2000; i++ {
		in := s.Next()
		o := rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
		if det.Update(o) != resumed.Update(o) {
			identical = false
		}
	}
	fmt.Println("resumed detector tracks the original:", identical)
	// Output:
	// resumed detector tracks the original: true
}

// ExampleNewServer serves a Monitor over TCP: the driftserver wire protocol
// on a loopback port, driven by the zero-allocation rbmim.Client. The
// FlushCheckpoints round trip doubles as a processing barrier, so the
// snapshot that follows it is deterministic.
func ExampleNewServer() {
	m, err := rbmim.NewMonitor(rbmim.MonitorConfig{
		Detector: rbmim.DetectorConfig{Features: 8, Classes: 3, Seed: 7},
		Shards:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := rbmim.NewServer(rbmim.ServerConfig{Monitor: m, Addr: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}

	c, err := rbmim.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	gen, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 8, Classes: 3, Seed: 2}, 3, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	obs := make([]rbmim.Observation, 64)
	for i := range obs {
		in := gen.Next()
		obs[i] = rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	if err := c.IngestBatch("turbine-7", obs); err != nil { // one frame, one round trip
		log.Fatal(err)
	}
	if err := c.FlushCheckpoints(); err != nil { // barrier: everything above is applied
		log.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streams=%d ingested=%d\n", sn.Streams, sn.Ingested)

	c.Close()
	srv.Close() // network side first ...
	m.Close()   // ... then the monitor (flushes any checkpoint store)
	// Output:
	// streams=1 ingested=64
}

// ExampleClient shows the request vocabulary beyond ingestion: eviction
// (asynchronous, made visible by the flush barrier) and the aggregate
// snapshot, against a server with an in-memory checkpoint store so the
// evicted stream's trained state survives for a later re-ingest.
func ExampleClient() {
	m, err := rbmim.NewMonitor(rbmim.MonitorConfig{
		Detector:   rbmim.DetectorConfig{Features: 8, Classes: 3, Seed: 7},
		Shards:     2,
		Checkpoint: rbmim.CheckpointConfig{Store: rbmim.NewMemStore()},
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := rbmim.NewServer(rbmim.ServerConfig{Monitor: m, Addr: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	defer srv.Close()

	c, err := rbmim.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	gen, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 8, Classes: 3, Seed: 5}, 3, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	one := func() rbmim.Observation {
		in := gen.Next()
		return rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	for i := 0; i < 10; i++ {
		if err := c.Ingest("sensor-a", one()); err != nil {
			log.Fatal(err)
		}
		if err := c.Ingest("sensor-b", one()); err != nil {
			log.Fatal(err)
		}
	}
	// Evict sensor-a: its trained detector spills to the store, and the
	// flush makes the removal (and the spill) visible.
	if err := c.Evict("sensor-a"); err != nil {
		log.Fatal(err)
	}
	if err := c.FlushCheckpoints(); err != nil {
		log.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streams=%d ingested=%d checkpoints=%d\n", sn.Streams, sn.Ingested, sn.Checkpoints)
	// Output:
	// streams=1 ingested=20 checkpoints=2
}

// ExampleNewMemStore runs a checkpointed Monitor: the first monitor persists
// every stream's detector state on Close, and a second monitor sharing the
// store transparently rehydrates the trained detector when the stream
// re-ingests — the warm-restart shape a long-running multi-stream service
// needs. Use NewFSStore instead to survive real process restarts.
func ExampleNewMemStore() {
	store := rbmim.NewMemStore()
	cfg := rbmim.MonitorConfig{
		Detector:   rbmim.DetectorConfig{Features: 8, Classes: 3, Seed: 7},
		Shards:     2,
		Checkpoint: rbmim.CheckpointConfig{Store: store},
	}
	s, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 8, Classes: 3, Seed: 9}, 3, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	feed := func(m *rbmim.Monitor, n int) {
		for i := 0; i < n; i++ {
			in := s.Next()
			if err := m.Ingest("sensor-1", rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}); err != nil {
				log.Fatal(err)
			}
		}
	}

	m1, err := rbmim.NewMonitor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	feed(m1, 500)
	m1.Close() // flushes every stream's state to the store

	m2, err := rbmim.NewMonitor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	feed(m2, 500) // first ingest rehydrates the trained detector
	m2.Close()

	sn := m2.Snapshot()
	fmt.Println("streams rehydrated from the store:", sn.Rehydrated)
	// Output:
	// streams rehydrated from the store: 1
}

// ExampleDialCluster drives a two-member driftserver fleet through the
// consistent-hash cluster client: streams route to members by the ring,
// and a live stream hops between members via checkpoint handoff without
// losing its trained detector — the migrated stream continues exactly
// where it left off, counted by the target's rehydration counter.
func ExampleDialCluster() {
	// Two fleet members, identically configured (same detector template,
	// each with a checkpoint store — migration serializes through it).
	var addrs []string
	for i := 0; i < 2; i++ {
		m, err := rbmim.NewMonitor(rbmim.MonitorConfig{
			Detector:   rbmim.DetectorConfig{Features: 8, Classes: 3, Seed: 7},
			Shards:     2,
			Checkpoint: rbmim.CheckpointConfig{Store: rbmim.NewMemStore()},
		})
		if err != nil {
			log.Fatal(err)
		}
		srv, err := rbmim.NewServer(rbmim.ServerConfig{Monitor: m, Addr: "127.0.0.1:0"})
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}

	cc, err := rbmim.DialCluster(rbmim.ClusterConfig{Addrs: addrs})
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()

	gen, err := rbmim.NewRBF(rbmim.GeneratorConfig{Features: 8, Classes: 3, Seed: 5}, 3, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	feed := func(n int) {
		for i := 0; i < n; i++ {
			for _, id := range []string{"sensor-a", "sensor-b"} {
				in := gen.Next()
				if err := cc.Ingest(id, rbmim.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	feed(10)

	// Live-migrate sensor-a to the other member; its trained state travels
	// as a checkpoint frame and later observations follow it there.
	owner, err := cc.Owner("sensor-a")
	if err != nil {
		log.Fatal(err)
	}
	target := addrs[0]
	if target == owner {
		target = addrs[1]
	}
	if err := cc.Migrate("sensor-a", target); err != nil {
		log.Fatal(err)
	}
	feed(10)

	// The fleet-merged snapshot accounts for every observation, and the
	// migrated stream shows up as one rehydration on its target.
	if err := cc.FlushCheckpoints(); err != nil {
		log.Fatal(err)
	}
	sn, err := cc.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streams=%d ingested=%d migrations=%d rehydrated=%d\n",
		sn.Streams, sn.Ingested, cc.Migrations(), sn.Rehydrated)
	// Output:
	// streams=2 ingested=40 migrations=1 rehydrated=1
}
